"""Practitioner recommendations (paper Section 6) as a rule engine.

Given the analysis of one or more experiment runs and the configuration they
ran under, the engine emits the applicable recommendations of Section 6.1 —
adapting the block size, simplifying the endorsement policy, preferring
LevelDB, avoiding range queries, batching read-only transactions — each with
the rationale observed in the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.analyzer import ExperimentAnalysis
from repro.network.config import DatabaseType


@dataclass(frozen=True)
class Recommendation:
    """One actionable recommendation with its rationale."""

    identifier: str
    title: str
    rationale: str
    paper_section: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.identifier}] {self.title}: {self.rationale}"


class RecommendationEngine:
    """Derives Section 6 recommendations from measured failure reports."""

    def __init__(
        self,
        mvcc_threshold_pct: float = 5.0,
        endorsement_threshold_pct: float = 1.0,
        phantom_threshold_pct: float = 1.0,
        read_only_share_threshold: float = 0.3,
        orderer_utilization_threshold: float = 0.8,
        cross_channel_threshold_pct: float = 1.0,
        channel_imbalance_threshold: float = 1.5,
        retry_failure_threshold_pct: float = 10.0,
        retry_amplification_threshold: float = 1.5,
        peer_fault_threshold_pct: float = 1.0,
        outage_threshold_pct: float = 0.5,
    ) -> None:
        self.mvcc_threshold_pct = mvcc_threshold_pct
        self.endorsement_threshold_pct = endorsement_threshold_pct
        self.phantom_threshold_pct = phantom_threshold_pct
        self.read_only_share_threshold = read_only_share_threshold
        self.orderer_utilization_threshold = orderer_utilization_threshold
        self.cross_channel_threshold_pct = cross_channel_threshold_pct
        self.channel_imbalance_threshold = channel_imbalance_threshold
        self.retry_failure_threshold_pct = retry_failure_threshold_pct
        self.retry_amplification_threshold = retry_amplification_threshold
        self.peer_fault_threshold_pct = peer_fault_threshold_pct
        self.outage_threshold_pct = outage_threshold_pct

    def recommend(self, analysis: ExperimentAnalysis) -> List[Recommendation]:
        """All recommendations triggered by this analysis."""
        recommendations: List[Recommendation] = []
        report = analysis.failure_report
        config = analysis.record.config
        metrics = analysis.metrics

        if report.mvcc_pct >= self.mvcc_threshold_pct:
            recommendations.append(
                Recommendation(
                    identifier="block-size",
                    title="Adapt the block size to the transaction arrival rate",
                    rationale=(
                        f"{report.mvcc_pct:.1f}% of transactions fail with MVCC read conflicts "
                        f"at {metrics.arrival_rate:.0f} tps with block size {config.block_size}; "
                        "the paper observed up to 60% fewer failures at the best block size."
                    ),
                    paper_section="6.1 Block size",
                )
            )
            if report.intra_block_mvcc_pct > report.inter_block_mvcc_pct:
                recommendations.append(
                    Recommendation(
                        identifier="reordering",
                        title="Consider Fabric++ or FabricSharp (transaction reordering)",
                        rationale=(
                            "Most MVCC conflicts are intra-block "
                            f"({report.intra_block_mvcc_pct:.1f}% vs "
                            f"{report.inter_block_mvcc_pct:.1f}% inter-block); intra-block "
                            "conflicts can be resolved by reordering."
                        ),
                        paper_section="6.1 Types of failures",
                    )
                )

        if report.endorsement_pct >= self.endorsement_threshold_pct:
            recommendations.append(
                Recommendation(
                    identifier="endorsement-policy",
                    title="Reduce organizations, signatures and sub-policies",
                    rationale=(
                        f"{report.endorsement_pct:.2f}% endorsement policy failures with "
                        f"{config.orgs} organizations and policy {config.endorsement_policy}; "
                        "fewer endorsers and simpler policies reduce world-state "
                        "inconsistency windows."
                    ),
                    paper_section="6.1 Number of organizations & endorsement policies",
                )
            )

        if report.phantom_pct >= self.phantom_threshold_pct:
            recommendations.append(
                Recommendation(
                    identifier="range-queries",
                    title="Avoid range queries in the chaincode",
                    rationale=(
                        f"{report.phantom_pct:.2f}% phantom read conflicts; no Fabric parameter "
                        "resolves them, so redesign the chaincode (e.g. maintain aggregate keys "
                        "instead of scanning ranges)."
                    ),
                    paper_section="6.1 Chaincode design & database type",
                )
            )

        if DatabaseType.parse(config.database) is DatabaseType.COUCHDB:
            uses_rich_queries = any(
                "GetQueryResult" in tx.db_call_latency for tx in analysis.record.transactions
            )
            if not uses_rich_queries:
                recommendations.append(
                    Recommendation(
                        identifier="leveldb",
                        title="Use LevelDB instead of CouchDB",
                        rationale=(
                            "The workload never used rich queries, but CouchDB adds an order of "
                            "magnitude of latency to every state operation and increases both "
                            "MVCC and endorsement policy failures."
                        ),
                        paper_section="6.1 Chaincode design & database type",
                    )
                )

        read_only_share = self._read_only_share(analysis)
        if read_only_share >= self.read_only_share_threshold and config.submit_read_only:
            recommendations.append(
                Recommendation(
                    identifier="read-only",
                    title="Do not submit read-only transactions for ordering",
                    rationale=(
                        f"{100 * read_only_share:.0f}% of the submitted transactions are "
                        "read-only; their result is already known after the execution phase, "
                        "so batching or skipping them avoids needless ordering and validation."
                    ),
                    paper_section="6.1 Client design",
                )
            )

        self._channel_rules(analysis, recommendations)
        self._retry_rules(analysis, recommendations)
        self._fault_rules(analysis, recommendations)

        if analysis.record.config.delayed_orgs:
            recommendations.append(
                Recommendation(
                    identifier="network-delay",
                    title="Account for geographically distant organizations",
                    rationale=(
                        "An organization with induced network delay participates in "
                        "endorsement; either exclude it from the endorsement policy or expect "
                        "elevated endorsement policy failures and MVCC conflicts."
                    ),
                    paper_section="5.1.7 Network delay",
                )
            )
        return recommendations

    def _channel_rules(
        self, analysis: ExperimentAnalysis, recommendations: List[Recommendation]
    ) -> None:
        """Channel-count advice for the multi-channel extension."""
        report = analysis.failure_report
        config = analysis.record.config
        metrics = analysis.metrics
        if (
            config.channels == 1
            and metrics.orderer_utilization >= self.orderer_utilization_threshold
        ):
            recommendations.append(
                Recommendation(
                    identifier="channel-count",
                    title="Shard the workload across multiple channels",
                    rationale=(
                        f"the single ordering service is "
                        f"{100 * metrics.orderer_utilization:.0f}% utilized; partitioning the "
                        "key space across channels gives every shard its own orderer and "
                        "block cutter, raising aggregate throughput and shrinking the MVCC "
                        "conflict window."
                    ),
                    paper_section="Extension: multi-channel deployments",
                )
            )
        if config.channels > 1:
            if report.cross_channel_abort_pct >= self.cross_channel_threshold_pct:
                recommendations.append(
                    Recommendation(
                        identifier="cross-channel",
                        title="Reduce cross-channel transactions",
                        rationale=(
                            f"{report.cross_channel_abort_pct:.2f}% of transactions abort in "
                            "the two-phase cross-channel prepare; co-locate keys that are "
                            "updated together on one channel or lower the cross-channel "
                            "fraction."
                        ),
                        paper_section="Extension: multi-channel deployments",
                    )
                )
            submitted = [
                channel.metrics.submitted_transactions for channel in analysis.channel_analyses
            ]
            if submitted:
                mean = sum(submitted) / len(submitted)
                if mean > 0 and max(submitted) / mean >= self.channel_imbalance_threshold:
                    recommendations.append(
                        Recommendation(
                            identifier="placement",
                            title="Rebalance the key placement across channels",
                            rationale=(
                                f"the busiest channel received {max(submitted)} of "
                                f"{sum(submitted)} transactions "
                                f"({max(submitted) / mean:.1f}x the mean); hash placement "
                                "spreads hot keys evenly across channels."
                            ),
                            paper_section="Extension: multi-channel deployments",
                        )
                    )

    def _retry_rules(
        self, analysis: ExperimentAnalysis, recommendations: List[Recommendation]
    ) -> None:
        """Client retry/resubmission advice (see :mod:`repro.lifecycle.retry`)."""
        report = analysis.failure_report
        retry = analysis.record.config.retry
        metrics = analysis.metrics
        if not retry.enabled and report.total_failure_pct >= self.retry_failure_threshold_pct:
            recommendations.append(
                Recommendation(
                    identifier="enable-retries",
                    title="Resubmit failed transactions with jittered backoff",
                    rationale=(
                        f"{report.total_failure_pct:.1f}% of transactions fail and the "
                        "clients never resubmit, so every failure is a lost request "
                        "(client-effective failure rate equals the raw rate); a jittered "
                        "backoff retry policy recovers most failed requests at a bounded "
                        "load amplification."
                    ),
                    paper_section="Extension: client retry subsystem",
                )
            )
        if (
            retry.enabled
            and retry.policy in ("immediate", "fixed")
            and report.mvcc_pct >= self.mvcc_threshold_pct
        ):
            recommendations.append(
                Recommendation(
                    identifier="jittered-backoff",
                    title="Decorrelate retries with jittered exponential backoff",
                    rationale=(
                        f"MVCC read conflicts dominate the failures ({report.mvcc_pct:.1f}%) "
                        f"and the {retry.policy!r} retry policy resubmits every transaction "
                        "of a failed batch (almost) simultaneously, re-creating the "
                        "conflicting batch one retry later — especially under a skewed "
                        "key distribution, where the resubmissions collide on the same "
                        "hot keys; full-jitter exponential backoff spreads them apart."
                    ),
                    paper_section="Extension: client retry subsystem",
                )
            )
        if (
            retry.enabled
            and retry.rate_cap is None
            and metrics.retry_amplification >= self.retry_amplification_threshold
        ):
            recommendations.append(
                Recommendation(
                    identifier="retry-rate-cap",
                    title="Cap the deployment-wide resubmission rate",
                    rationale=(
                        f"the clients submit {metrics.retry_amplification:.1f}x as many "
                        "attempts as they have requests and no resubmission rate cap is "
                        "configured — a retry storm that feeds the very contention it "
                        "reacts to; a global rate cap (or a per-client budget) bounds the "
                        "amplification while keeping most of the recovered requests."
                    ),
                    paper_section="Extension: client retry subsystem",
                )
            )

    def _fault_rules(
        self, analysis: ExperimentAnalysis, recommendations: List[Recommendation]
    ) -> None:
        """Chaos-resilience advice derived from fault-induced failure classes."""
        report = analysis.failure_report
        config = analysis.record.config
        retry = config.retry
        peer_fault_pct = report.peer_unavailable_pct + report.endorsement_timeout_pct
        if peer_fault_pct >= self.peer_fault_threshold_pct:
            recommendations.append(
                Recommendation(
                    identifier="endorsement-quorum-slack",
                    title="Add endorsement quorum slack for crash-prone peers",
                    rationale=(
                        f"{peer_fault_pct:.2f}% of transactions fail because an endorsing "
                        f"peer was down or its response timed out; with "
                        f"{config.endorsers_per_org} endorser(s) per organization a single "
                        "crash removes an organization from the quorum, so provision spare "
                        "endorsers per org (endorsers_per_org + 1) or relax the policy to a "
                        "quorum that tolerates one missing organization."
                    ),
                    paper_section="Extension: fault injection",
                )
            )
        if (
            not retry.enabled
            and report.orderer_unavailable_pct >= self.outage_threshold_pct
        ):
            recommendations.append(
                Recommendation(
                    identifier="retry-under-outage",
                    title="Enable jittered retries to ride out orderer blips",
                    rationale=(
                        f"{report.orderer_unavailable_pct:.2f}% of transactions were refused "
                        "during ordering-service outage windows and the clients never "
                        "resubmit, so every blip permanently loses its requests; a jittered "
                        "backoff retry policy resubmits them after the outage at bounded "
                        "extra load."
                    ),
                    paper_section="Extension: fault injection",
                )
            )

    @staticmethod
    def _read_only_share(analysis: ExperimentAnalysis) -> float:
        transactions = analysis.record.transactions
        if not transactions:
            return 0.0
        read_only = sum(1 for tx in transactions if tx.read_only)
        return read_only / len(transactions)
