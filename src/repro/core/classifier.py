"""Classify failed transactions by replaying the ledger.

The paper collects all metrics by parsing the blockchain after each experiment
(Section 4.5).  The classifier does exactly that: it replays the blocks in
order, maintains the committed versions of every key, and attributes each
failed transaction to one of the failure classes of Section 3 — including the
intra- vs inter-block distinction for MVCC read conflicts, which requires
knowing in which block the conflicting write was committed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.failures import FailureType
from repro.ledger.block import Transaction, ValidationCode
from repro.ledger.kvstore import Version
from repro.ledger.ledger import Ledger


@dataclass
class ClassifiedTransaction:
    """One failed transaction together with its derived failure class."""

    tx: Transaction
    failure_type: FailureType
    conflicting_key: Optional[str] = None
    conflicting_block: Optional[int] = None

    @property
    def is_mvcc(self) -> bool:
        """True for intra- or inter-block MVCC read conflicts."""
        return self.failure_type.is_mvcc


class TransactionClassifier:
    """Replays a ledger and classifies every failed transaction."""

    def classify_ledger(
        self, ledger: Ledger, early_aborted: Iterable[Transaction] = ()
    ) -> List[ClassifiedTransaction]:
        """Classify all failures on the ledger plus the early-aborted transactions."""
        classified: List[ClassifiedTransaction] = []
        committed_versions: Dict[str, Version] = {}
        last_writer: Dict[str, Tuple[int, int]] = {}
        for block in ledger:
            for index, tx in enumerate(block.transactions):
                if tx.validation_code is None:
                    continue
                if tx.validation_code is ValidationCode.VALID:
                    self._apply(tx, block.number, index, committed_versions, last_writer)
                    continue
                classified.append(
                    self._classify_failure(tx, block.number, committed_versions, last_writer)
                )
        for tx in early_aborted:
            classified.append(
                ClassifiedTransaction(tx=tx, failure_type=self._early_abort_type(tx))
            )
        return classified

    @staticmethod
    def _early_abort_type(tx: Transaction) -> FailureType:
        """The failure class of a transaction that never reached a block.

        Shares the single code-to-class mapping of
        :func:`repro.lifecycle.events.failure_type_of`, so the classifier and
        the lifecycle event stream can never disagree; codes outside the
        mapping (a custom variant's private abort code) fall back to the
        generic early-abort class.
        """
        from repro.lifecycle.events import failure_type_of

        try:
            failure_type = failure_type_of(tx)
        except KeyError:
            return FailureType.EARLY_ABORT
        return failure_type if failure_type is not None else FailureType.EARLY_ABORT

    # ------------------------------------------------------------------ rules
    def _classify_failure(
        self,
        tx: Transaction,
        block_number: int,
        committed_versions: Dict[str, Version],
        last_writer: Dict[str, Tuple[int, int]],
    ) -> ClassifiedTransaction:
        code = tx.validation_code
        if code is ValidationCode.ENDORSEMENT_POLICY_FAILURE:
            return ClassifiedTransaction(tx=tx, failure_type=FailureType.ENDORSEMENT_POLICY)
        if code is ValidationCode.ABORTED_BY_REORDERING:
            return ClassifiedTransaction(tx=tx, failure_type=FailureType.ORDERING_ABORT)
        if code is ValidationCode.PHANTOM_READ_CONFLICT:
            key, writer = self._find_phantom_conflict(tx, committed_versions, last_writer)
            return ClassifiedTransaction(
                tx=tx,
                failure_type=FailureType.PHANTOM_READ,
                conflicting_key=key,
                conflicting_block=writer[0] if writer else None,
            )
        if code is ValidationCode.MVCC_READ_CONFLICT:
            key, writer = self._find_mvcc_conflict(tx, committed_versions, last_writer)
            conflicting_block = writer[0] if writer else None
            if conflicting_block is not None and conflicting_block == block_number:
                failure_type = FailureType.MVCC_INTRA_BLOCK
            else:
                failure_type = FailureType.MVCC_INTER_BLOCK
            return ClassifiedTransaction(
                tx=tx,
                failure_type=failure_type,
                conflicting_key=key,
                conflicting_block=conflicting_block,
            )
        # EARLY_ABORT transactions normally never appear inside blocks, but a
        # custom variant could put them there; classify them as early aborts.
        return ClassifiedTransaction(tx=tx, failure_type=FailureType.EARLY_ABORT)

    def _find_mvcc_conflict(
        self,
        tx: Transaction,
        committed_versions: Dict[str, Version],
        last_writer: Dict[str, Tuple[int, int]],
    ) -> Tuple[Optional[str], Optional[Tuple[int, int]]]:
        if tx.rwset is None:
            return None, None
        for read in tx.rwset.reads:
            if read.key not in last_writer:
                # The key was never written (or deleted) on the ledger, so its
                # version cannot have changed since the genesis population.
                continue
            current = committed_versions.get(read.key)
            if current != read.version:
                return read.key, last_writer.get(read.key)
        return None, None

    def _find_phantom_conflict(
        self,
        tx: Transaction,
        committed_versions: Dict[str, Version],
        last_writer: Dict[str, Tuple[int, int]],
    ) -> Tuple[Optional[str], Optional[Tuple[int, int]]]:
        if tx.rwset is None:
            return None, None
        for range_read in tx.rwset.range_reads:
            if not range_read.phantom_detection:
                continue
            observed = {read.key: read.version for read in range_read.reads}
            # Only keys that were written (or deleted) on the ledger can have
            # changed relative to the endorsement-time observation.
            for key, position in sorted(last_writer.items()):
                if not range_read.start_key <= key < range_read.end_key:
                    continue
                if observed.get(key) != committed_versions.get(key):
                    return key, position
        return None, None

    # ------------------------------------------------------------------ replay
    def _apply(
        self,
        tx: Transaction,
        block_number: int,
        index: int,
        committed_versions: Dict[str, Version],
        last_writer: Dict[str, Tuple[int, int]],
    ) -> None:
        if tx.rwset is None:
            return
        version = Version(block_number=block_number, tx_number=index)
        for write in tx.rwset.writes:
            if write.is_delete:
                committed_versions.pop(write.key, None)
            else:
                committed_versions[write.key] = version
            last_writer[write.key] = (block_number, index)
