"""Experiment metrics: failure percentages, latency and committed throughput.

The metrics follow the definitions of paper Section 4.5: all failures are
reported as percentages of the submitted transactions, the *average total
transaction latency* covers all three phases of both failed and successful
transactions, and the *committed transaction throughput* is the number of
transactions committed to the blockchain divided by the total time taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.classifier import ClassifiedTransaction, TransactionClassifier
from repro.core.failures import FailureType
from repro.ledger.block import Transaction
from repro.network.network import RunRecord
from repro.observability.spans import LIFECYCLE_STAGES, BlockTimes, stage_durations
from repro.sim.stats import QuantileSketch, percentile


@dataclass
class FailureReport:
    """Failure counts and percentages broken down by failure type."""

    total_transactions: int
    counts: Dict[FailureType, int] = field(default_factory=dict)

    def count(self, failure_type: FailureType) -> int:
        """Number of failures of the given type."""
        return self.counts.get(failure_type, 0)

    def percentage(self, failure_type: FailureType) -> float:
        """Failures of the given type as a percentage of all transactions."""
        if self.total_transactions == 0:
            return 0.0
        return 100.0 * self.count(failure_type) / self.total_transactions

    #: Failure classes whose transactions never reach a block: FabricSharp's
    #: early aborts, the cross-channel coordinator's prepare aborts, and the
    #: three infrastructure classes of the fault-injection subsystem.
    NEVER_ON_CHAIN = frozenset(
        {
            FailureType.EARLY_ABORT,
            FailureType.CROSS_CHANNEL_ABORT,
            FailureType.ENDORSEMENT_TIMEOUT,
            FailureType.ORDERER_UNAVAILABLE,
            FailureType.PEER_UNAVAILABLE,
        }
    )

    @property
    def recorded_failures(self) -> int:
        """Failed transactions recorded on the blockchain.

        FabricSharp's early aborts and cross-channel prepare aborts never
        reach a block, so — like the paper, which collects all metrics by
        parsing the blockchain — they are not part of the headline failure
        percentage; they show up as reduced committed throughput instead
        (Section 5.4.2).
        """
        return sum(
            count
            for failure_type, count in self.counts.items()
            if failure_type not in self.NEVER_ON_CHAIN
        )

    @property
    def total_failures(self) -> int:
        """Total number of failed transactions including early aborts."""
        return sum(self.counts.values())

    @property
    def total_failure_pct(self) -> float:
        """Blockchain-recorded failures as a percentage of submitted transactions."""
        if self.total_transactions == 0:
            return 0.0
        return 100.0 * self.recorded_failures / self.total_transactions

    @property
    def endorsement_pct(self) -> float:
        """Endorsement policy failures in percent (Figures 9, 12, 13, ...)."""
        return self.percentage(FailureType.ENDORSEMENT_POLICY)

    @property
    def intra_block_mvcc_pct(self) -> float:
        """Intra-block MVCC read conflicts in percent (Figure 7)."""
        return self.percentage(FailureType.MVCC_INTRA_BLOCK)

    @property
    def inter_block_mvcc_pct(self) -> float:
        """Inter-block MVCC read conflicts in percent (Figure 7)."""
        return self.percentage(FailureType.MVCC_INTER_BLOCK)

    @property
    def mvcc_pct(self) -> float:
        """All MVCC read conflicts (intra + inter) in percent."""
        return self.intra_block_mvcc_pct + self.inter_block_mvcc_pct

    @property
    def phantom_pct(self) -> float:
        """Phantom read conflicts in percent (Figure 10)."""
        return self.percentage(FailureType.PHANTOM_READ)

    @property
    def ordering_abort_pct(self) -> float:
        """Transactions aborted by reordering and recorded on chain (Fabric++)."""
        return self.percentage(FailureType.ORDERING_ABORT)

    @property
    def early_abort_pct(self) -> float:
        """Transactions aborted before ordering and never recorded (FabricSharp)."""
        return self.percentage(FailureType.EARLY_ABORT)

    @property
    def cross_channel_abort_pct(self) -> float:
        """Cross-channel transactions aborted by the 2PC prepare (multi-channel)."""
        return self.percentage(FailureType.CROSS_CHANNEL_ABORT)

    @property
    def endorsement_timeout_pct(self) -> float:
        """Transactions lost to the endorsement-collection watchdog (faults)."""
        return self.percentage(FailureType.ENDORSEMENT_TIMEOUT)

    @property
    def orderer_unavailable_pct(self) -> float:
        """Transactions refused during an ordering-service outage (faults)."""
        return self.percentage(FailureType.ORDERER_UNAVAILABLE)

    @property
    def peer_unavailable_pct(self) -> float:
        """Proposals that failed fast against a down endorsing peer (faults)."""
        return self.percentage(FailureType.PEER_UNAVAILABLE)

    @property
    def infrastructure_pct(self) -> float:
        """All fault-induced failures (timeouts + orderer + peer unavailability).

        Derived from :attr:`FailureType.is_infrastructure`, so a new
        infrastructure failure class is counted here automatically.
        """
        return sum(
            self.percentage(failure) for failure in FailureType if failure.is_infrastructure
        )

    def as_dict(self) -> Dict[str, float]:
        """Percentages keyed by failure-type value (for reports and tests)."""
        summary = {failure.value: self.percentage(failure) for failure in FailureType}
        summary["total"] = self.total_failure_pct
        return summary


@dataclass
class ExperimentMetrics:
    """All metrics of one experiment run."""

    variant: str
    chaincode: str
    workload: str
    arrival_rate: float
    block_size: int
    duration: float
    submitted_transactions: int
    committed_transactions: int
    failure_report: FailureReport
    average_latency: float
    #: Transactions appended to the blockchain (valid and failed) per second —
    #: the paper's "committed transaction throughput" (Section 4.5).
    committed_throughput: float
    #: Only successfully validated transactions per second.
    successful_throughput: float
    blocks: int
    average_block_fill: float
    orderer_utilization: float
    validation_utilization: float
    endorsement_utilization: float
    function_call_latency_ms: Dict[str, float] = field(default_factory=dict)
    #: Client retry subsystem bookkeeping (see :mod:`repro.lifecycle.retry`).
    retry_policy: str = "none"
    resubmissions: int = 0
    retries_exhausted: int = 0
    retry_budget_denied: int = 0
    retry_rate_denied: int = 0
    #: Distinct logical client requests (resubmission attempts of the same
    #: request collapse onto their first attempt's transaction id).
    logical_requests: int = 0
    #: Logical requests with at least one committed attempt.
    committed_requests: int = 0
    #: Fault-injection bookkeeping of the run: applied injections per
    #: :class:`~repro.faults.schedule.FaultKind` value plus loss/deferral
    #: counters (empty without an enabled fault config).
    fault_injections: Dict[str, int] = field(default_factory=dict)
    #: The horizon the throughput metrics divide by: the configured duration
    #: or the last commit time, whichever is later.
    measurement_horizon: float = 0.0
    #: Total-latency quantiles (``p50``/``p95``/``p99``) over all terminated
    #: transactions, from the constant-memory P² sketch.
    latency_quantiles: Dict[str, float] = field(default_factory=dict)
    #: Per-lifecycle-stage latency breakdown: stage name ->
    #: ``{"count", "mean_s", "p95_s"}`` (only stages any transaction reached).
    stage_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Isolation-checker verdict summary of the run (see
    #: :meth:`repro.checker.checker.IsolationReport.summary`; empty unless
    #: ``config.checker`` was enabled).
    isolation: Dict[str, object] = field(default_factory=dict)

    @property
    def failure_pct(self) -> float:
        """Total failed transactions in percent of the submitted transactions.

        The *raw* (per-attempt) failure rate: every resubmitted attempt counts
        again, exactly as the blockchain records it.
        """
        return self.failure_report.total_failure_pct

    @property
    def client_effective_failure_pct(self) -> float:
        """Logical requests that never committed, in percent.

        The failure rate a client actually experiences once its retries are
        accounted for: a request that fails twice and commits on the third
        attempt is one success here, while it contributes two failures to the
        raw :attr:`failure_pct`.
        """
        if self.logical_requests == 0:
            return 0.0
        failed = self.logical_requests - self.committed_requests
        return 100.0 * failed / self.logical_requests

    @property
    def goodput(self) -> float:
        """Committed *logical requests* per second.

        Committed throughput counts every transaction appended to the chain —
        including failed attempts and duplicate retries.  Goodput counts each
        logical request at most once, so retry storms inflate committed
        throughput but never goodput.  Divides by the same horizon as the
        throughput metrics, so the two are directly comparable.
        """
        horizon = self.measurement_horizon or self.duration
        if horizon <= 0:
            return 0.0
        return self.committed_requests / horizon

    @property
    def retry_amplification(self) -> float:
        """Submitted attempts per logical request (1.0 = no retries).

        The load-amplification factor of the retry policy: 2.0 means the
        clients pushed twice as many attempts into the network as they had
        requests — the signature of a retry storm.
        """
        if self.logical_requests == 0:
            return 1.0
        return self.submitted_transactions / self.logical_requests


def _average_latency(transactions: Iterable[Transaction]) -> float:
    latencies = [tx.total_latency for tx in transactions if tx.total_latency is not None]
    if not latencies:
        return 0.0
    return sum(latencies) / len(latencies)


def _latency_quantiles(transactions: Iterable[Transaction]) -> Dict[str, float]:
    """p50/p95/p99 of the total transaction latency (``{}`` without samples)."""
    sketch = QuantileSketch()
    for tx in transactions:
        latency = tx.total_latency
        if latency is not None:
            sketch.add(latency)
    return sketch.as_dict()


def _block_times(record: RunRecord) -> BlockTimes:
    """Block-cut times per channel, for the block-wait/consensus stage split."""
    if record.channel_records:
        return {
            channel.index: {
                block.number: block.created_at for block in channel.record.ledger.blocks
            }
            for channel in record.channel_records
        }
    return {None: {block.number: block.created_at for block in record.ledger.blocks}}


def _stage_latency(record: RunRecord) -> Dict[str, Dict[str, float]]:
    """Per-lifecycle-stage latency summary over every recorded transaction."""
    block_times = _block_times(record)
    samples: Dict[str, List[float]] = {}
    for tx in record.transactions:
        created_at = None
        if tx.block_number is not None:
            created_at = block_times.get(tx.channel, {}).get(tx.block_number)
        for stage, duration in stage_durations(tx, created_at).items():
            samples.setdefault(stage, []).append(duration)
    ordered = [stage for stage in LIFECYCLE_STAGES if stage in samples]
    ordered += sorted(stage for stage in samples if stage not in LIFECYCLE_STAGES)
    return {
        stage: {
            "count": float(len(samples[stage])),
            "mean_s": sum(samples[stage]) / len(samples[stage]),
            "p95_s": percentile(samples[stage], 0.95),
        }
        for stage in ordered
    }


def _function_call_latencies(transactions: Iterable[Transaction]) -> Dict[str, float]:
    """Mean latency per state-database call type, in milliseconds (Table 4)."""
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for tx in transactions:
        for operation, seconds in tx.db_call_latency.items():
            totals[operation] = totals.get(operation, 0.0) + seconds
            counts[operation] = counts.get(operation, 0) + 1
    return {
        operation: 1000.0 * totals[operation] / counts[operation] for operation in sorted(totals)
    }


def _logical_requests(record: RunRecord) -> tuple[int, int]:
    """``(logical_requests, committed_requests)`` of one run.

    Resubmission attempts share their first attempt's transaction id as
    ``origin_id``, so grouping by it collapses every retry chain onto one
    logical request.  Read-only transactions answered locally are excluded,
    mirroring the submitted-for-ordering count of the failure report.
    """
    skipped = {tx.tx_id for tx in record.read_only_skipped}
    committed_by_origin: Dict[str, bool] = {}
    for tx in record.transactions:
        if tx.tx_id in skipped:
            continue
        committed_by_origin[tx.origin_id] = (
            committed_by_origin.get(tx.origin_id, False) or tx.is_committed
        )
    return len(committed_by_origin), sum(committed_by_origin.values())


def build_failure_report(
    classified: List[ClassifiedTransaction], total_transactions: int
) -> FailureReport:
    """Aggregate classified failures into a report."""
    counts: Dict[FailureType, int] = {}
    for item in classified:
        counts[item.failure_type] = counts.get(item.failure_type, 0) + 1
    return FailureReport(total_transactions=total_transactions, counts=counts)


def compute_metrics(
    record: RunRecord, classified: Optional[List[ClassifiedTransaction]] = None
) -> ExperimentMetrics:
    """Compute the Section 4.5 metrics for one run record.

    ``classified`` may be passed in to avoid re-running the classifier when the
    caller (e.g. :class:`~repro.core.analyzer.LedgerAnalyzer`) already did.
    Multi-channel records aggregate over every channel's chain (each channel
    is classified against its own ledger, since MVCC history is per chain).
    """
    if classified is None:
        classifier = TransactionClassifier()
        classified = []
        for ledger, early_aborted in record.classification_units():
            classified.extend(classifier.classify_ledger(ledger, early_aborted))
    # Read-only transactions that were answered locally (client-design
    # ablation) are not considered submitted-for-ordering, mirroring the paper
    # where they simply never reach the blockchain.
    submitted_count = len(record.transactions) - len(record.read_only_skipped)
    report = build_failure_report(classified, submitted_count)
    ledgers = record.ledgers()
    committed = sum(len(ledger.committed_transactions()) for ledger in ledgers)
    appended = sum(ledger.transaction_count for ledger in ledgers)
    last_commit = max((tx.committed_at or 0.0 for tx in record.transactions), default=0.0)
    horizon = max(record.duration, last_commit)
    throughput = appended / horizon if horizon > 0 else 0.0
    successful_throughput = committed / horizon if horizon > 0 else 0.0
    blocks = sum(ledger.height for ledger in ledgers)
    average_fill = (
        sum(block.size for ledger in ledgers for block in ledger) / blocks if blocks else 0.0
    )
    logical_requests, committed_requests = _logical_requests(record)
    return ExperimentMetrics(
        variant=record.variant_name,
        chaincode=record.chaincode_name,
        workload=record.workload_name,
        arrival_rate=record.arrival_rate,
        block_size=record.config.block_size,
        duration=record.duration,
        submitted_transactions=submitted_count,
        committed_transactions=committed,
        failure_report=report,
        average_latency=_average_latency(record.transactions),
        committed_throughput=throughput,
        successful_throughput=successful_throughput,
        blocks=blocks,
        average_block_fill=average_fill,
        orderer_utilization=record.orderer_utilization,
        validation_utilization=record.mean_validation_utilization,
        endorsement_utilization=record.mean_endorsement_utilization,
        function_call_latency_ms=_function_call_latencies(record.transactions),
        retry_policy=record.retry_policy,
        resubmissions=record.resubmissions,
        retries_exhausted=record.retries_exhausted,
        retry_budget_denied=record.retry_budget_denied,
        retry_rate_denied=record.retry_rate_denied,
        logical_requests=logical_requests,
        committed_requests=committed_requests,
        fault_injections=dict(record.fault_injections),
        measurement_horizon=horizon,
        latency_quantiles=_latency_quantiles(record.transactions),
        stage_latency=_stage_latency(record),
        isolation=record.isolation.summary() if record.isolation is not None else {},
    )
