"""Experiment metrics: failure percentages, latency and committed throughput.

The metrics follow the definitions of paper Section 4.5: all failures are
reported as percentages of the submitted transactions, the *average total
transaction latency* covers all three phases of both failed and successful
transactions, and the *committed transaction throughput* is the number of
transactions committed to the blockchain divided by the total time taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.classifier import ClassifiedTransaction, TransactionClassifier
from repro.core.failures import FailureType
from repro.ledger.block import Transaction
from repro.network.network import RunRecord


@dataclass
class FailureReport:
    """Failure counts and percentages broken down by failure type."""

    total_transactions: int
    counts: Dict[FailureType, int] = field(default_factory=dict)

    def count(self, failure_type: FailureType) -> int:
        """Number of failures of the given type."""
        return self.counts.get(failure_type, 0)

    def percentage(self, failure_type: FailureType) -> float:
        """Failures of the given type as a percentage of all transactions."""
        if self.total_transactions == 0:
            return 0.0
        return 100.0 * self.count(failure_type) / self.total_transactions

    #: Failure classes whose transactions never reach a block: FabricSharp's
    #: early aborts and the cross-channel coordinator's prepare aborts.
    NEVER_ON_CHAIN = frozenset({FailureType.EARLY_ABORT, FailureType.CROSS_CHANNEL_ABORT})

    @property
    def recorded_failures(self) -> int:
        """Failed transactions recorded on the blockchain.

        FabricSharp's early aborts and cross-channel prepare aborts never
        reach a block, so — like the paper, which collects all metrics by
        parsing the blockchain — they are not part of the headline failure
        percentage; they show up as reduced committed throughput instead
        (Section 5.4.2).
        """
        return sum(
            count
            for failure_type, count in self.counts.items()
            if failure_type not in self.NEVER_ON_CHAIN
        )

    @property
    def total_failures(self) -> int:
        """Total number of failed transactions including early aborts."""
        return sum(self.counts.values())

    @property
    def total_failure_pct(self) -> float:
        """Blockchain-recorded failures as a percentage of submitted transactions."""
        if self.total_transactions == 0:
            return 0.0
        return 100.0 * self.recorded_failures / self.total_transactions

    @property
    def endorsement_pct(self) -> float:
        """Endorsement policy failures in percent (Figures 9, 12, 13, ...)."""
        return self.percentage(FailureType.ENDORSEMENT_POLICY)

    @property
    def intra_block_mvcc_pct(self) -> float:
        """Intra-block MVCC read conflicts in percent (Figure 7)."""
        return self.percentage(FailureType.MVCC_INTRA_BLOCK)

    @property
    def inter_block_mvcc_pct(self) -> float:
        """Inter-block MVCC read conflicts in percent (Figure 7)."""
        return self.percentage(FailureType.MVCC_INTER_BLOCK)

    @property
    def mvcc_pct(self) -> float:
        """All MVCC read conflicts (intra + inter) in percent."""
        return self.intra_block_mvcc_pct + self.inter_block_mvcc_pct

    @property
    def phantom_pct(self) -> float:
        """Phantom read conflicts in percent (Figure 10)."""
        return self.percentage(FailureType.PHANTOM_READ)

    @property
    def ordering_abort_pct(self) -> float:
        """Transactions aborted by reordering and recorded on chain (Fabric++)."""
        return self.percentage(FailureType.ORDERING_ABORT)

    @property
    def early_abort_pct(self) -> float:
        """Transactions aborted before ordering and never recorded (FabricSharp)."""
        return self.percentage(FailureType.EARLY_ABORT)

    @property
    def cross_channel_abort_pct(self) -> float:
        """Cross-channel transactions aborted by the 2PC prepare (multi-channel)."""
        return self.percentage(FailureType.CROSS_CHANNEL_ABORT)

    def as_dict(self) -> Dict[str, float]:
        """Percentages keyed by failure-type value (for reports and tests)."""
        summary = {failure.value: self.percentage(failure) for failure in FailureType}
        summary["total"] = self.total_failure_pct
        return summary


@dataclass
class ExperimentMetrics:
    """All metrics of one experiment run."""

    variant: str
    chaincode: str
    workload: str
    arrival_rate: float
    block_size: int
    duration: float
    submitted_transactions: int
    committed_transactions: int
    failure_report: FailureReport
    average_latency: float
    #: Transactions appended to the blockchain (valid and failed) per second —
    #: the paper's "committed transaction throughput" (Section 4.5).
    committed_throughput: float
    #: Only successfully validated transactions per second.
    successful_throughput: float
    blocks: int
    average_block_fill: float
    orderer_utilization: float
    validation_utilization: float
    endorsement_utilization: float
    function_call_latency_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def failure_pct(self) -> float:
        """Total failed transactions in percent of the submitted transactions."""
        return self.failure_report.total_failure_pct


def _average_latency(transactions: Iterable[Transaction]) -> float:
    latencies = [tx.total_latency for tx in transactions if tx.total_latency is not None]
    if not latencies:
        return 0.0
    return sum(latencies) / len(latencies)


def _function_call_latencies(transactions: Iterable[Transaction]) -> Dict[str, float]:
    """Mean latency per state-database call type, in milliseconds (Table 4)."""
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for tx in transactions:
        for operation, seconds in tx.db_call_latency.items():
            totals[operation] = totals.get(operation, 0.0) + seconds
            counts[operation] = counts.get(operation, 0) + 1
    return {
        operation: 1000.0 * totals[operation] / counts[operation] for operation in sorted(totals)
    }


def build_failure_report(
    classified: List[ClassifiedTransaction], total_transactions: int
) -> FailureReport:
    """Aggregate classified failures into a report."""
    counts: Dict[FailureType, int] = {}
    for item in classified:
        counts[item.failure_type] = counts.get(item.failure_type, 0) + 1
    return FailureReport(total_transactions=total_transactions, counts=counts)


def compute_metrics(
    record: RunRecord, classified: Optional[List[ClassifiedTransaction]] = None
) -> ExperimentMetrics:
    """Compute the Section 4.5 metrics for one run record.

    ``classified`` may be passed in to avoid re-running the classifier when the
    caller (e.g. :class:`~repro.core.analyzer.LedgerAnalyzer`) already did.
    Multi-channel records aggregate over every channel's chain (each channel
    is classified against its own ledger, since MVCC history is per chain).
    """
    if classified is None:
        classifier = TransactionClassifier()
        classified = []
        for ledger, early_aborted in record.classification_units():
            classified.extend(classifier.classify_ledger(ledger, early_aborted))
    # Read-only transactions that were answered locally (client-design
    # ablation) are not considered submitted-for-ordering, mirroring the paper
    # where they simply never reach the blockchain.
    submitted_count = len(record.transactions) - len(record.read_only_skipped)
    report = build_failure_report(classified, submitted_count)
    ledgers = record.ledgers()
    committed = sum(len(ledger.committed_transactions()) for ledger in ledgers)
    appended = sum(ledger.transaction_count for ledger in ledgers)
    last_commit = max((tx.committed_at or 0.0 for tx in record.transactions), default=0.0)
    horizon = max(record.duration, last_commit)
    throughput = appended / horizon if horizon > 0 else 0.0
    successful_throughput = committed / horizon if horizon > 0 else 0.0
    blocks = sum(ledger.height for ledger in ledgers)
    average_fill = (
        sum(block.size for ledger in ledgers for block in ledger) / blocks if blocks else 0.0
    )
    return ExperimentMetrics(
        variant=record.variant_name,
        chaincode=record.chaincode_name,
        workload=record.workload_name,
        arrival_rate=record.arrival_rate,
        block_size=record.config.block_size,
        duration=record.duration,
        submitted_transactions=submitted_count,
        committed_transactions=committed,
        failure_report=report,
        average_latency=_average_latency(record.transactions),
        committed_throughput=throughput,
        successful_throughput=successful_throughput,
        blocks=blocks,
        average_block_fill=average_fill,
        orderer_utilization=record.orderer_utilization,
        validation_utilization=record.mean_validation_utilization,
        endorsement_utilization=record.mean_endorsement_utilization,
        function_call_latency_ms=_function_call_latencies(record.transactions),
    )
