"""The failure study core: definitions, classification, analysis, recommendations.

This package is the paper's primary contribution translated into a library:

* :mod:`repro.core.failures` — the formal failure definitions of Section 3
  (Equations 1-5) as executable predicates.
* :mod:`repro.core.classifier` — classifies every failed transaction on the
  ledger into endorsement policy failures, intra-/inter-block MVCC read
  conflicts and phantom read conflicts.
* :mod:`repro.core.metrics` / :mod:`repro.core.analyzer` — parse the blockchain
  after an experiment (Section 4.5) and compute the metrics of the study.
* :mod:`repro.core.recommendations` — the practitioner recommendations of
  Section 6 as a rule engine over measured failure reports.
* :mod:`repro.core.adaptive` — the adaptive block size controller proposed as
  future work in Section 6.2.
"""

from repro.core.adaptive import AdaptiveBlockSizeController, BlockSizeTuner
from repro.core.analyzer import ExperimentAnalysis, LedgerAnalyzer
from repro.core.classifier import ClassifiedTransaction, TransactionClassifier
from repro.core.failures import FailureType
from repro.core.metrics import ExperimentMetrics, FailureReport, compute_metrics
from repro.core.recommendations import Recommendation, RecommendationEngine

__all__ = [
    "AdaptiveBlockSizeController",
    "BlockSizeTuner",
    "ExperimentAnalysis",
    "LedgerAnalyzer",
    "ClassifiedTransaction",
    "TransactionClassifier",
    "FailureType",
    "ExperimentMetrics",
    "FailureReport",
    "compute_metrics",
    "Recommendation",
    "RecommendationEngine",
]
