"""Streamchain (István et al.) — do blockchains need blocks?

Streamchain streams transactions one-by-one through ordering and validation
instead of batching them into blocks, validates signatures in parallel and
pipelines the validation steps, and keeps the ledger and world state on a RAM
disk.  This keeps the world state very fresh (few MVCC conflicts) and the
latency very low at small arrival rates, but the per-transaction ordering,
broadcast and commit overheads are no longer amortized over a block, so the
system saturates at moderate arrival rates — earlier on the larger C2 cluster
where every transaction must be broadcast to 32 peers (paper Section 5.3).
"""

from __future__ import annotations

from repro.fabric.variant import FabricVariantBehavior, register_variant
from repro.ledger.block import Block, ValidationCode
from repro.network.config import NetworkConfig


class Streamchain(FabricVariantBehavior):
    """Streamchain: block-less streaming with RAM-disk storage."""

    name = "Streamchain"

    def configure(self, config: NetworkConfig) -> NetworkConfig:
        """Force a virtual block of a single transaction (no batching wait)."""
        config = super().configure(config)
        config.block_size = 1
        return config

    def ordering_service_time(self, block: Block, config: NetworkConfig, peer_count: int) -> float:
        """Per-transaction streaming cost; grows linearly with the peer count."""
        timing = config.timing
        return block.size * (
            timing.stream_orderer_per_tx + timing.stream_broadcast_per_peer * peer_count
        )

    def validation_service_time(self, block: Block, config: NetworkConfig) -> float:
        """Pipelined per-transaction validation with (optional) RAM-disk storage."""
        timing = config.timing
        database = config.database_profile
        storage_factor = timing.ramdisk_factor if config.use_ram_disk else 1.0
        subpolicy_count = self._subpolicy_count
        if subpolicy_count is None:
            subpolicy_count = self.policy.subpolicy_count()
        vscc_subpolicy_cost = timing.vscc_per_subpolicy * subpolicy_count
        total = 0.0
        for tx in block.transactions:
            total += timing.stream_validation_per_tx
            total += (
                timing.vscc_per_signature * max(1, tx.endorsement_count) + vscc_subpolicy_cost
            )
            if tx.rwset is None:
                continue
            total += database.mvcc_check_per_key * len(tx.rwset.reads) * storage_factor
            for range_read in tx.rwset.range_reads:
                if range_read.phantom_detection:
                    total += database.range_cost(len(range_read.reads)) * storage_factor
            commit_cost = database.commit_per_block + database.commit_per_write * len(
                tx.rwset.writes
            )
            if tx.validation_code is ValidationCode.VALID:
                total += commit_cost * storage_factor
        return total


register_variant("streamchain", Streamchain)
