"""Fabric++ (Sharma et al., SIGMOD 2019) — intra-block transaction reordering.

In the ordering phase Fabric++ builds a conflict graph over the transactions of
each block, aborts the transactions involved in cycles (a greedy approximation
of the NP-hard minimum feedback vertex set problem) and serializes the
remaining transactions so that intra-block MVCC read conflicts disappear.
Inter-block conflicts, endorsement policy failures and phantom reads are not
affected; and because the conflict graph grows with the number of
read/write-key overlaps, chaincodes with large range queries (DV, SCM) make the
reordering step very expensive (paper Section 5.2.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fabric.conflictgraph import reorder_batch
from repro.fabric.variant import FabricVariantBehavior, register_variant
from repro.ledger.block import Block, ValidationCode
from repro.network.config import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.orderer import OrderingService


class FabricPlusPlus(FabricVariantBehavior):
    """Fabric++: conflict-graph based reordering inside each block."""

    name = "Fabric++"

    def prepare_block(self, block: Block, orderer: "OrderingService") -> float:
        """Reorder the block and abort cycle members; return the reordering cost."""
        serialized, aborted, edge_count = reorder_batch(block.transactions)
        for tx in aborted:
            tx.validation_code = ValidationCode.ABORTED_BY_REORDERING
            tx.abort_reason = "aborted by Fabric++ to break a conflict-graph cycle"
        # Aborted transactions stay in the block (they are recorded on the
        # ledger as failed), placed after the serialized schedule.
        block.transactions = serialized + aborted
        block.reordered = True
        timing = orderer.config.timing
        read_keys = sum(
            len(tx.rwset.all_reads()) for tx in block.transactions if tx.rwset is not None
        )
        return (
            timing.reorder_per_tx * block.size
            + timing.reorder_per_edge * edge_count
            + timing.reorder_per_read_key * read_keys
        )

    def validation_service_time(self, block: Block, config: NetworkConfig) -> float:
        """Same validation cost model as Fabric 1.4.

        Transactions aborted during reordering are skipped by the base
        implementation, so blocks with many aborts validate slightly faster —
        matching the reduced validation overhead Fabric++ reports.
        """
        return super().validation_service_time(block, config)


register_variant("fabric++", FabricPlusPlus)
