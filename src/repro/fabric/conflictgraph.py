"""Conflict graphs, cycle removal and serialization (Fabric++ / FabricSharp).

Both Fabric++ and FabricSharp build a conflict graph over the transactions of a
batch: there is an edge ``reader -> writer`` whenever one transaction reads a
key that another transaction writes, meaning the reader must be ordered
*before* the writer for both to remain serializable.  Cycles cannot be
serialized; they are broken by aborting transactions — the minimum feedback
vertex set problem is NP-hard, so (like Fabric++) a greedy approximation is
used that repeatedly removes the most-connected transaction of a strongly
connected component.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from repro.ledger.block import Transaction


def build_dependency_graph(transactions: Sequence[Transaction]) -> Tuple[nx.DiGraph, int]:
    """Build the conflict graph of a batch of transactions.

    Nodes are transaction indexes into ``transactions``; an edge ``i -> j``
    means transaction ``i`` reads a key that transaction ``j`` writes, so ``i``
    must precede ``j``.  Returns the graph and the number of dependency edges
    (the edge count drives the reordering cost model — range queries over large
    key sets create very dense graphs, which is why Fabric++ struggles with the
    DV and SCM chaincodes in Section 5.2.3).
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(transactions)))
    writers: Dict[str, List[int]] = {}
    for index, tx in enumerate(transactions):
        if tx.rwset is None:
            continue
        for key in tx.rwset.write_keys():
            writers.setdefault(key, []).append(index)
    edge_count = 0
    for index, tx in enumerate(transactions):
        if tx.rwset is None:
            continue
        for key in tx.rwset.read_keys():
            for writer in writers.get(key, ()):
                if writer == index:
                    continue
                if not graph.has_edge(index, writer):
                    graph.add_edge(index, writer)
                    edge_count += 1
    return graph, edge_count


def remove_cycles(graph: nx.DiGraph) -> Set[int]:
    """Greedy minimum-feedback-vertex-set approximation.

    Repeatedly finds a non-trivial strongly connected component and removes the
    node with the highest total degree inside it, until the graph is acyclic.
    Returns the set of removed (aborted) transaction indexes.  The input graph
    is modified in place.
    """
    aborted: Set[int] = set()
    while True:
        cyclic_components = [
            component
            for component in nx.strongly_connected_components(graph)
            if len(component) > 1
            or any(graph.has_edge(node, node) for node in component)
        ]
        if not cyclic_components:
            return aborted
        for component in cyclic_components:
            subgraph = graph.subgraph(component)
            victim = max(
                component,
                key=lambda node: (subgraph.in_degree(node) + subgraph.out_degree(node), -node),
            )
            graph.remove_node(victim)
            aborted.add(victim)


def serialization_order(graph: nx.DiGraph) -> List[int]:
    """A serializable order of the remaining transactions (topological order).

    Ties are broken by the original index so the reordering is deterministic
    and stays as close to the arrival order as the dependencies allow.
    """
    return list(nx.lexicographical_topological_sort(graph))


def reorder_batch(transactions: Sequence[Transaction]) -> Tuple[List[Transaction], List[Transaction], int]:
    """Reorder a batch so readers precede writers; abort cycle members.

    Returns ``(serialized, aborted, edge_count)`` where ``serialized`` is the
    new transaction order and ``aborted`` are the transactions removed to break
    cycles.
    """
    graph, edge_count = build_dependency_graph(transactions)
    aborted_indexes = remove_cycles(graph)
    order = serialization_order(graph)
    serialized = [transactions[index] for index in order]
    aborted = [transactions[index] for index in sorted(aborted_indexes)]
    return serialized, aborted, edge_count
