"""Variant behaviour base class and registry.

A variant behaviour encapsulates everything that differs between Fabric 1.4 and
the studied optimizations: how the ordering service batches and possibly
reorders transactions, how expensive ordering and validation are, whether
transactions can be aborted before ordering, and which state the endorsers
execute against.  The default implementations in
:class:`FabricVariantBehavior` are exactly Fabric 1.4 semantics; subclasses
override individual hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Type

from repro.errors import ConfigurationError
from repro.ledger.block import Block, Transaction, ValidationCode
from repro.network.config import NetworkConfig
from repro.network.endorsement import PolicyNode, build_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.orderer import OrderingService


class FabricVariantBehavior:
    """Fabric 1.4 pipeline semantics; the base for every optimization."""

    #: Display name used in reports and figures.
    name = "Fabric 1.4"
    #: FabricSharp endorses against a snapshot lagging one block behind
    #: (served as an epoch-pinned :class:`~repro.ledger.store.LaggedStateView`
    #: over the peer's overlay store).
    endorse_from_snapshot = False
    #: FabricSharp does not support range queries (paper Section 5.4).
    supports_range_queries = True

    def __init__(self) -> None:
        self._policy: Optional[PolicyNode] = None
        #: Cached ``policy.subpolicy_count()`` (static per policy tree); the
        #: VSCC cost model reads it once per transaction.
        self._subpolicy_count: Optional[int] = None

    # ----------------------------------------------------------- configuration
    def configure(self, config: NetworkConfig) -> NetworkConfig:
        """Adjust the network configuration for this variant.

        The base implementation only resolves and caches the endorsement policy
        (needed by the VSCC cost model); subclasses may also rewrite block
        cutting parameters (Streamchain forces a block size of one).
        """
        self._policy = build_policy(config.endorsement_policy, config.orgs)
        self._subpolicy_count = self._policy.subpolicy_count()
        return config

    @property
    def policy(self) -> PolicyNode:
        """The resolved endorsement policy (available after ``configure``)."""
        if self._policy is None:
            raise ConfigurationError(
                f"variant {self.name!r} was not configured; call configure() first"
            )
        return self._policy

    # -------------------------------------------------------------- ordering
    def on_transaction_arrival(self, tx: Transaction, orderer: "OrderingService") -> bool:
        """Decide whether a transaction enters the ordering pipeline.

        Returning ``False`` drops the transaction as an early abort (it never
        reaches a block).  Fabric 1.4 accepts everything.
        """
        return True

    def prepare_block(self, block: Block, orderer: "OrderingService") -> float:
        """Pre-process a freshly cut block (reordering, in-block aborts).

        Returns the extra ordering-service time the pre-processing costs.
        Fabric 1.4 performs no pre-processing.
        """
        return 0.0

    def after_block_validated(self, block: Block, orderer: "OrderingService") -> None:
        """Hook invoked after canonical validation of a block (bookkeeping)."""

    def ordering_service_time(self, block: Block, config: NetworkConfig, peer_count: int) -> float:
        """Consensus and block-broadcast time of the ordering service."""
        timing = config.timing
        return (
            timing.orderer_per_block
            + timing.orderer_per_tx * block.size
            + timing.orderer_broadcast_per_peer * peer_count
        )

    # ------------------------------------------------------------- validation
    def validation_service_time(self, block: Block, config: NetworkConfig) -> float:
        """Time one peer needs to validate and commit ``block``.

        Covers the VSCC endorsement-policy check, the MVCC version checks, the
        re-execution of phantom-checked range queries (expensive on CouchDB)
        and the state-database commit of the valid write sets.
        """
        timing = config.timing
        database = config.database_profile
        subpolicy_count = self._subpolicy_count
        if subpolicy_count is None:
            subpolicy_count = self.policy.subpolicy_count()
        # Inlined vscc_validation_cost with the (static) sub-policy term
        # precomputed; the per-transaction arithmetic is unchanged.
        vscc_per_signature = timing.vscc_per_signature
        vscc_subpolicy_cost = timing.vscc_per_subpolicy * subpolicy_count
        mvcc_check_per_key = database.mvcc_check_per_key
        commit_per_write = database.commit_per_write
        range_cost = database.range_cost
        aborted = ValidationCode.ABORTED_BY_REORDERING
        valid = ValidationCode.VALID
        total = timing.validation_per_block + database.commit_per_block
        for tx in block.transactions:
            if tx.validation_code is aborted:
                continue
            total += vscc_per_signature * max(1, tx.endorsement_count) + vscc_subpolicy_cost
            rwset = tx.rwset
            if rwset is None:
                continue
            total += mvcc_check_per_key * len(rwset.reads)
            for range_read in rwset.range_reads:
                if range_read.phantom_detection:
                    total += range_cost(len(range_read.reads))
            if tx.validation_code is valid:
                total += commit_per_write * len(rwset.writes)
        return total

    # -------------------------------------------------------------- reporting
    def describe(self) -> str:
        """One-line description used by reports."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


#: Registry filled by the concrete variant modules (see ``register_variant``).
VARIANT_REGISTRY: Dict[str, Type[FabricVariantBehavior]] = {}

#: Accepted spellings for each canonical variant key.
_ALIASES = {
    "fabric": "fabric-1.4",
    "fabric1.4": "fabric-1.4",
    "fabric-1.4": "fabric-1.4",
    "fabric14": "fabric-1.4",
    "fabric 1.4": "fabric-1.4",
    "fabric++": "fabric++",
    "fabricpp": "fabric++",
    "fabric-plus-plus": "fabric++",
    "streamchain": "streamchain",
    "fabricsharp": "fabricsharp",
    "fabric#": "fabricsharp",
    "fabric-sharp": "fabricsharp",
}


def register_variant(key: str, variant_class: Type[FabricVariantBehavior]) -> None:
    """Register a variant class under its canonical key."""
    VARIANT_REGISTRY[key] = variant_class


def available_variants() -> list[str]:
    """Canonical keys of all registered variants."""
    return sorted(VARIANT_REGISTRY)


def create_variant(name: "str | FabricVariantBehavior") -> FabricVariantBehavior:
    """Instantiate a variant by (case-insensitive) name.

    Passing an already-instantiated behaviour returns it unchanged, which lets
    callers hand in pre-configured custom variants.
    """
    if isinstance(name, FabricVariantBehavior):
        return name
    key = _ALIASES.get(str(name).strip().lower())
    if key is None or key not in VARIANT_REGISTRY:
        known = ", ".join(available_variants())
        raise ConfigurationError(f"unknown Fabric variant {name!r}; known variants: {known}")
    return VARIANT_REGISTRY[key]()
