"""Fabric 1.4: the vanilla Execute-Order-Validate pipeline.

All of the Fabric 1.4 behaviour lives in the default implementations of
:class:`~repro.fabric.variant.FabricVariantBehavior`; this module only gives it
its canonical name and registers it.
"""

from __future__ import annotations

from repro.fabric.variant import FabricVariantBehavior, register_variant


class Fabric14(FabricVariantBehavior):
    """Vanilla Fabric 1.4 (the baseline of every experiment in the paper)."""

    name = "Fabric 1.4"


register_variant("fabric-1.4", Fabric14)
