"""Fabric variants: vanilla Fabric 1.4 and the three studied optimizations.

The paper evaluates four builds of Fabric (Section 4.5): Fabric 1.4, Fabric++
(intra-block transaction reordering, Sharma et al.), Streamchain (block-less
streaming, István et al.) and FabricSharp (cross-block serializability with
early aborts, Ruan et al.).  Each build is modelled as a
:class:`~repro.fabric.variant.FabricVariantBehavior` that plugs into the
simulated network at the ordering, validation and endorsement hooks.
"""

from repro.fabric.base import Fabric14
from repro.fabric.conflictgraph import (
    build_dependency_graph,
    remove_cycles,
    serialization_order,
)
from repro.fabric.fabricpp import FabricPlusPlus
from repro.fabric.fabricsharp import FabricSharp
from repro.fabric.streamchain import Streamchain
from repro.fabric.variant import (
    VARIANT_REGISTRY,
    FabricVariantBehavior,
    available_variants,
    create_variant,
)

__all__ = [
    "Fabric14",
    "FabricPlusPlus",
    "FabricSharp",
    "Streamchain",
    "FabricVariantBehavior",
    "VARIANT_REGISTRY",
    "available_variants",
    "create_variant",
    "build_dependency_graph",
    "remove_cycles",
    "serialization_order",
]
