"""FabricSharp (Ruan et al., SIGMOD 2020) — cross-block serializability.

FabricSharp maintains the conflict graph *across* blocks: transactions whose
reads are already stale with respect to the committed state, or which conflict
with writes of blocks that are in flight (cut but not yet committed), are
aborted before ordering.  Remaining intra-batch conflicts are serialized by
reordering.  The result is that no MVCC read conflict ever reaches the
validation phase; only endorsement policy failures remain — and those become
slightly more frequent because FabricSharp endorses against block snapshots
that lag the freshest state (paper Section 5.4.1).  Aborted transactions are
never recorded on the ledger, which is why the committed transaction
throughput drops (Section 5.4.2).  Range queries are not supported.

The lagging snapshots are :class:`~repro.ledger.store.LaggedStateView` s
pinned to the peer store's pre-commit epoch: the store's pre-image journal
supplies the snapshot at O(changed-keys) cost, replacing the full
``snapshot_versions()`` materialization per block.  The arrival-time
staleness check below reads the canonical store's committed versions (its
last-writer index answers conflict attribution in O(1) per key).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.errors import UnsupportedFeatureError
from repro.fabric.conflictgraph import reorder_batch
from repro.fabric.variant import FabricVariantBehavior, register_variant
from repro.ledger.block import Block, Transaction, ValidationCode
from repro.network.config import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.orderer import OrderingService


class FabricSharp(FabricVariantBehavior):
    """FabricSharp: early aborts plus cross-block conflict-graph serialization."""

    name = "FabricSharp"
    endorse_from_snapshot = True
    supports_range_queries = False

    def __init__(self) -> None:
        super().__init__()
        #: Keys written by blocks that were cut but whose writes are not yet
        #: part of the committed canonical state, with a reference count.
        self._in_flight_writes: Dict[str, int] = {}

    # -------------------------------------------------------------- ordering
    def on_transaction_arrival(self, tx: Transaction, orderer: "OrderingService") -> bool:
        """Abort transactions that can no longer be serialized."""
        if tx.rwset is None:
            return True
        if tx.rwset.range_reads:
            raise UnsupportedFeatureError(
                "FabricSharp does not support range queries (paper Section 5.4); "
                f"transaction {tx.tx_id} issued one via {tx.function!r}"
            )
        if tx.endorsement_mismatch:
            # The transaction is doomed to fail VSCC; FabricSharp still records
            # endorsement policy failures on the ledger (Section 5.4.2), so it
            # is ordered normally instead of being aborted early.
            return True
        for read in tx.rwset.reads:
            current = orderer.validator.current_version(read.key)
            if current != read.version:
                tx.abort_reason = (
                    f"stale read of {read.key!r}: endorsed version {read.version}, "
                    f"committed version {current}"
                )
                return False
            if read.key in self._in_flight_writes:
                tx.abort_reason = (
                    f"read of {read.key!r} conflicts with an in-flight (uncommitted) write"
                )
                return False
        return True

    def prepare_block(self, block: Block, orderer: "OrderingService") -> float:
        """Serialize the batch; cycle members are aborted and never recorded."""
        serialized, aborted, edge_count = reorder_batch(block.transactions)
        for tx in aborted:
            # Routed through the ordering stage's early-abort seam so the
            # lifecycle bus observes the abort like every other failure path.
            orderer.abort_early(
                tx,
                ValidationCode.EARLY_ABORT,
                reason=tx.abort_reason or "aborted by FabricSharp (conflict-graph cycle)",
            )
        block.transactions = serialized
        block.reordered = True
        read_count = sum(
            len(tx.rwset.reads) for tx in serialized if tx.rwset is not None
        )
        for tx in serialized:
            if tx.rwset is None:
                continue
            for key in tx.rwset.write_keys():
                self._in_flight_writes[key] = self._in_flight_writes.get(key, 0) + 1
        timing = orderer.config.timing
        return (
            timing.reorder_per_tx * (len(serialized) + len(aborted))
            + timing.reorder_per_edge * edge_count
            + timing.early_abort_check_per_key * read_count
        )

    def after_block_validated(self, block: Block, orderer: "OrderingService") -> None:
        """Release the in-flight write tracking once the block is committed."""
        for tx in block.transactions:
            if tx.rwset is None:
                continue
            for key in tx.rwset.write_keys():
                remaining = self._in_flight_writes.get(key)
                if remaining is None:
                    continue
                if remaining <= 1:
                    del self._in_flight_writes[key]
                else:
                    self._in_flight_writes[key] = remaining - 1

    # ------------------------------------------------------------- validation
    def validation_service_time(self, block: Block, config: NetworkConfig) -> float:
        """Blocks contain only serializable transactions; costs mirror Fabric 1.4."""
        return super().validation_service_time(block, config)

    # ------------------------------------------------------------- inspection
    @property
    def in_flight_write_count(self) -> int:
        """Number of keys currently tracked as written-but-uncommitted."""
        return len(self._in_flight_writes)


register_variant("fabricsharp", FabricSharp)
