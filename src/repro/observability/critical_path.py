"""Critical-path analytics: which stage dominates each transaction's latency.

Works from two sources with one shared core:

- in-process, straight from the :class:`~repro.observability.spans.SpanNode`
  roots an observed run produced (the ``repro run``/``repro sweep`` path);
- offline, from a Chrome trace file written earlier (the
  ``repro trace summary`` path), by regrouping the flat ``X`` events into
  attempts via their ``(pid, tid)`` coordinates.

For every committed attempt the analyzer finds the *dominant* stage — the
lifecycle stage that consumed the largest share of the attempt's end-to-end
latency — and aggregates per stage: how many transactions it dominated, the
total/mean/p95 time spent in it, and its share of all committed latency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.observability.spans import (
    CATEGORY_STAGE,
    CATEGORY_TX,
    LIFECYCLE_STAGES,
    SpanNode,
)
from repro.sim.stats import percentile

#: One attempt reduced to what the analyzer needs: total latency plus the
#: per-stage durations of its direct stage children.
_Attempt = Tuple[float, Dict[str, float]]


def _attempt_from_span(root: SpanNode) -> Optional[_Attempt]:
    if root.args.get("status") != "committed":
        return None
    stages = {
        child.name: child.duration
        for child in root.children
        if child.category == CATEGORY_STAGE
    }
    return (root.duration, stages)


def _attempts_from_events(events: Iterable[dict]) -> List[_Attempt]:
    """Regroup flat Chrome ``X`` events into per-attempt stage durations."""
    roots: Dict[Tuple[int, int], dict] = {}
    stages: Dict[Tuple[int, int], Dict[str, float]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        key = (event.get("pid", 0), event.get("tid", 0))
        category = event.get("cat")
        if category == CATEGORY_TX:
            roots[key] = event
        elif category == CATEGORY_STAGE:
            per_attempt = stages.setdefault(key, {})
            name = event.get("name", "")
            per_attempt[name] = per_attempt.get(name, 0.0) + event.get("dur", 0.0) / 1e6
    attempts: List[_Attempt] = []
    for key, root in sorted(roots.items()):
        if root.get("args", {}).get("status") != "committed":
            continue
        attempts.append((root.get("dur", 0.0) / 1e6, stages.get(key, {})))
    return attempts


def _analyze(attempts: List[_Attempt]) -> dict:
    stage_totals: Dict[str, float] = {}
    stage_samples: Dict[str, List[float]] = {}
    dominant_counts: Dict[str, int] = {}
    total_latency = 0.0
    for latency, stages in attempts:
        total_latency += latency
        dominant_stage = None
        dominant_duration = -1.0
        for name, duration in stages.items():
            stage_totals[name] = stage_totals.get(name, 0.0) + duration
            stage_samples.setdefault(name, []).append(duration)
            if duration > dominant_duration:
                dominant_stage, dominant_duration = name, duration
        if dominant_stage is not None:
            dominant_counts[dominant_stage] = dominant_counts.get(dominant_stage, 0) + 1
    ordered = [name for name in LIFECYCLE_STAGES if name in stage_totals]
    ordered += sorted(name for name in stage_totals if name not in LIFECYCLE_STAGES)
    rows = []
    for name in ordered:
        samples = stage_samples[name]
        rows.append(
            {
                "stage": name,
                "dominant_count": dominant_counts.get(name, 0),
                "share_pct": 100.0 * stage_totals[name] / total_latency if total_latency else 0.0,
                "total_s": stage_totals[name],
                "mean_ms": 1e3 * stage_totals[name] / len(samples),
                "p95_ms": 1e3 * percentile(samples, 0.95),
            }
        )
    return {"committed": len(attempts), "stages": rows}


def critical_path_report(spans: Iterable[SpanNode]) -> dict:
    """Per-stage critical-path attribution from in-process span roots."""
    attempts = [attempt for root in spans if (attempt := _attempt_from_span(root)) is not None]
    return _analyze(attempts)


def critical_path_from_trace(document: dict) -> dict:
    """Per-stage critical-path attribution from a loaded Chrome trace."""
    return _analyze(_attempts_from_events(document.get("traceEvents", [])))


def format_report(report: dict) -> str:
    """The human-readable summary table ``repro trace summary`` prints."""
    lines = [f"committed transactions: {report['committed']}"]
    if report["stages"]:
        header = f"{'stage':<12} {'dominant':>8} {'share%':>7} {'total_s':>9} {'mean_ms':>8} {'p95_ms':>8}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in report["stages"]:
            lines.append(
                f"{row['stage']:<12} {row['dominant_count']:>8d} {row['share_pct']:>7.1f}"
                f" {row['total_s']:>9.3f} {row['mean_ms']:>8.2f} {row['p95_ms']:>8.2f}"
            )
    return "\n".join(lines)
