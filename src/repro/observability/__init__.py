"""End-to-end transaction tracing and sim-time metrics for simulated runs.

The package turns the lifecycle event stream and the engine's state into
exportable observability artifacts — span trees per transaction attempt,
sampled time series, fault markers — without perturbing the simulation:
observation draws no RNG, schedules nothing past the submission horizon and,
when disabled, installs nothing at all (runs stay bit-identical).
"""

from repro.observability.config import ObservabilityConfig
from repro.observability.critical_path import (
    critical_path_from_trace,
    critical_path_report,
    format_report,
)
from repro.observability.export import (
    chrome_trace_document,
    chrome_trace_events,
    dumps,
    load_trace,
    metrics_document,
    write_chrome_trace,
    write_metrics,
    write_span_jsonl,
)
from repro.observability.observer import ObservabilityData, RunObserver
from repro.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeriesSampler,
)
from repro.observability.spans import (
    CATEGORY_PEER,
    CATEGORY_STAGE,
    CATEGORY_TX,
    LIFECYCLE_STAGES,
    STAGE_BLOCK_WAIT,
    STAGE_COMMIT,
    STAGE_CONSENSUS,
    STAGE_ENDORSE,
    STAGE_PREPARE,
    STAGE_SUBMIT,
    SpanNode,
    SpanTracer,
    build_attempt_span,
    stage_durations,
)

__all__ = [
    "ObservabilityConfig",
    "ObservabilityData",
    "RunObserver",
    "SpanNode",
    "SpanTracer",
    "CATEGORY_TX",
    "CATEGORY_STAGE",
    "CATEGORY_PEER",
    "LIFECYCLE_STAGES",
    "STAGE_ENDORSE",
    "STAGE_SUBMIT",
    "STAGE_PREPARE",
    "STAGE_BLOCK_WAIT",
    "STAGE_CONSENSUS",
    "STAGE_COMMIT",
    "build_attempt_span",
    "stage_durations",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeriesSampler",
    "chrome_trace_document",
    "chrome_trace_events",
    "metrics_document",
    "dumps",
    "load_trace",
    "write_chrome_trace",
    "write_metrics",
    "write_span_jsonl",
    "critical_path_report",
    "critical_path_from_trace",
    "format_report",
]
