"""Counters, gauges and histograms plus the sim-time series sampler.

The registry is deliberately small: named :class:`Counter`/:class:`Gauge`
instruments and :class:`Histogram` s built on
:class:`~repro.sim.stats.OnlineStats` + the :class:`~repro.sim.stats.QuantileSketch`
(so every histogram reports mean/stdev *and* p50/p95/p99 at O(1) memory).

The :class:`TimeSeriesSampler` turns instantaneous state into a time series:
it pre-schedules its ticks over the submission window at construction-time
known times (strictly inside ``[0, duration)``), so the sampler never extends
the simulation horizon, reads state without drawing from any RNG stream, and
therefore leaves a sampled run bit-identical to an unsampled one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.sim.engine import Simulator
from repro.sim.stats import DEFAULT_QUANTILES, OnlineStats, QuantileSketch


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount``."""
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, lock count, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Distribution summary: Welford moments plus a P² quantile sketch."""

    def __init__(self, fractions: Sequence[float] = DEFAULT_QUANTILES) -> None:
        self.stats = OnlineStats()
        self.sketch = QuantileSketch(fractions)

    def observe(self, value: float) -> None:
        """Add one sample."""
        self.stats.add(value)
        self.sketch.add(value)

    def snapshot(self) -> Dict[str, float]:
        """Moments and quantiles as one JSON-serializable dictionary."""
        summary: Dict[str, float] = {"count": self.stats.count}
        if self.stats.count:
            summary.update(
                mean=self.stats.mean,
                min=self.stats.minimum,
                max=self.stats.maximum,
                stdev=self.stats.stdev,
            )
            summary.update(self.sketch.as_dict())
        return summary


class MetricsRegistry:
    """Named instruments, created on first use.

    ``snapshot()`` renders every instrument to plain data — the ``summary``
    section of the exported metrics document.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """Every instrument's current value, keyed by kind then name."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot() for name, h in sorted(self._histograms.items())},
        }


class TimeSeriesSampler:
    """Periodic sim-time sampling of registered sources into a time series.

    Two kinds of columns:

    - *sources* are sampled raw at every tick (gauges: pending events, queue
      depths);
    - *rates* read a cumulative counter and report its per-second increase
      over the tick interval (tps, goodput, abort rates, engine events/sec in
      sim time).

    Ticks are pre-scheduled strictly inside ``[0, duration)`` — never at or
    past the submission horizon — so the sampler cannot extend ``sim.now``
    beyond what the workload itself produces; a final row is taken
    synchronously at collect time.  Tick callbacks only read state.
    """

    def __init__(self, sim: Simulator, interval: float) -> None:
        self.sim = sim
        self.interval = interval
        self.samples: List[Dict[str, float]] = []
        self._sources: List[Tuple[str, Callable[[], float]]] = []
        self._rates: List[Tuple[str, Callable[[], float]]] = []
        self._last_values: Dict[str, float] = {}
        self._last_time = 0.0
        self._started = False

    def add_source(self, name: str, read: Callable[[], float]) -> None:
        """Register a raw column sampled at every tick."""
        self._sources.append((name, read))

    def add_rate(self, name: str, read_cumulative: Callable[[], float]) -> None:
        """Register a per-second rate column derived from a cumulative count."""
        self._rates.append((name, read_cumulative))
        self._last_values[name] = 0.0

    def start(self, duration: float) -> None:
        """Pre-schedule every tick of the submission window (idempotent)."""
        if self._started:
            return
        self._started = True
        tick = 1
        while tick * self.interval < duration:
            self.sim.post_at(tick * self.interval, self._sample)
            tick += 1

    def _sample(self) -> None:
        self.sample_now(self.sim.now)

    def sample_now(self, time: float) -> None:
        """Take one sample row at ``time`` (also used for the final row)."""
        row: Dict[str, float] = {"time": time}
        for name, read in self._sources:
            row[name] = float(read())
        span = time - self._last_time
        for name, read_cumulative in self._rates:
            current = float(read_cumulative())
            delta = current - self._last_values[name]
            self._last_values[name] = current
            row[name] = delta / span if span > 0 else 0.0
        self._last_time = time
        self.samples.append(row)
