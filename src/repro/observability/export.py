"""Deterministic exporters: Chrome trace-event JSON, span JSONL, metrics JSON.

Every writer serializes with ``sort_keys=True`` and compact separators and
derives timestamps purely from simulated time, so the same configuration and
seed always produce byte-identical files — asserted by the trace determinism
tests (serial vs parallel runner included).

The Chrome document follows the Trace Event Format (the JSON object form with
a ``traceEvents`` array), which both ``chrome://tracing`` and Perfetto load
directly: complete (``X``) events for spans, metadata (``M``) events naming
processes and threads, counter (``C``) events for the sampled time series and
instant (``i``) events for fault-injection markers.  One *process* per
experiment cell, one *thread* per transaction attempt.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence

from repro.observability.observer import ObservabilityData
from repro.observability.spans import SpanNode

#: Sampled columns that become Chrome counter tracks (one track per column).
_COUNTER_EXCLUDED = frozenset({"time"})


def _us(seconds: float) -> float:
    """Simulated seconds as Trace Event Format microseconds (3 decimals)."""
    return round(seconds * 1e6, 3)


def span_events(span: SpanNode, pid: int, tid: int) -> List[dict]:
    """Flatten one span tree into Chrome ``X`` (complete) events."""
    events = [
        {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": _us(span.start),
            "dur": _us(max(span.duration, 0.0)),
            "pid": pid,
            "tid": tid,
            "args": {key: _json_safe(value) for key, value in sorted(span.args.items())},
        }
    ]
    for child in span.children:
        events.extend(span_events(child, pid, tid))
    return events


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_trace_events(
    data: ObservabilityData, pid: int = 0, process_name: str = "run"
) -> List[dict]:
    """All Chrome trace events of one run, under process id ``pid``."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid, span in enumerate(data.spans, start=1):
        label = str(span.args.get("tx_id", f"attempt-{tid}"))
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
        events.extend(span_events(span, pid, tid))
    for row in data.samples:
        ts = _us(row["time"])
        for column in sorted(row):
            if column in _COUNTER_EXCLUDED:
                continue
            events.append(
                {
                    "name": column,
                    "cat": "metrics",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": row[column]},
                }
            )
    for marker in data.markers:
        args = {key: _json_safe(value) for key, value in sorted(marker.items()) if key != "time"}
        events.append(
            {
                "name": f"fault:{marker['kind']}",
                "cat": "fault",
                "ph": "i",
                "s": "g",
                "ts": _us(marker["time"]),
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )
    return events


def chrome_trace_document(
    runs: Sequence[ObservabilityData], names: Optional[Sequence[str]] = None
) -> dict:
    """The Trace Event Format document for one or many runs (one pid each)."""
    events: List[dict] = []
    for pid, data in enumerate(runs):
        name = names[pid] if names is not None else ("run" if len(runs) == 1 else f"run-{pid}")
        events.extend(chrome_trace_events(data, pid=pid, process_name=name))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


#: Engine-profile fields measured in wall-clock time.  Exports carry only
#: sim-deterministic data (same config + seed → byte-identical file), so these
#: stay in the in-process summary but never reach the metrics document.
_WALL_CLOCK_KEYS = ("wall_seconds", "events_per_sec")


def metrics_document(data: ObservabilityData) -> dict:
    """The metrics export: registry summary, sampled series, fault markers."""
    summary = dict(data.summary)
    engine = summary.get("engine")
    if isinstance(engine, dict):
        summary["engine"] = {
            key: value for key, value in engine.items() if key not in _WALL_CLOCK_KEYS
        }
    return {
        "summary": summary,
        "series": data.samples,
        "markers": data.markers,
    }


def dumps(document: object) -> str:
    """Canonical (byte-deterministic) JSON text for any export document."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def write_chrome_trace(
    path: str, runs: Sequence[ObservabilityData], names: Optional[Sequence[str]] = None
) -> None:
    """Write the Chrome trace of ``runs`` to ``path`` (canonical JSON)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(chrome_trace_document(runs, names)))
        handle.write("\n")


def write_metrics(path: str, data: ObservabilityData) -> None:
    """Write the metrics document of one run to ``path`` (canonical JSON)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(metrics_document(data)))
        handle.write("\n")


def write_span_jsonl(path: str, spans: Iterable[SpanNode]) -> None:
    """Write one span tree per line (nested JSON) — the raw span dump."""
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(dumps(span.as_dict()))
            handle.write("\n")


def load_trace(path: str) -> dict:
    """Load a Chrome trace file written by :func:`write_chrome_trace`.

    Raises :class:`ValueError` when the file is not a Trace Event Format
    document (callers translate this into a CLI error).
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or not isinstance(document.get("traceEvents"), list):
        raise ValueError(f"{path} is not a Chrome trace-event document")
    return document
