"""Configuration of the observability subsystem (tracing + metrics).

The default (disabled) configuration installs nothing at all: no bus
subscription, no sampler event, no profiler — the run is bit-identical to a
build without the :mod:`repro.observability` package.  Because observation
never influences the simulation, the configuration is also excluded from
experiment cell hashes entirely (see :func:`repro.bench.harness._canonical`):
tracing a cell does not change its identity, its per-repetition seeds, or its
results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ObservabilityConfig:
    """What to observe during a run (both off by default).

    ``trace`` materializes one span tree per transaction attempt from the
    lifecycle event stream; ``metrics`` runs the sim-time sampler and the
    engine profiler.  ``sample_interval`` is the sampler tick in simulated
    seconds.
    """

    trace: bool = False
    metrics: bool = False
    sample_interval: float = 0.25

    @property
    def enabled(self) -> bool:
        """True when any observer must be installed."""
        return self.trace or self.metrics

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for unusable sampler intervals."""
        if not math.isfinite(self.sample_interval) or self.sample_interval <= 0:
            raise ConfigurationError(
                f"the sample interval must be a positive finite number, "
                f"got {self.sample_interval}"
            )
