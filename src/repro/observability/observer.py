"""The per-run observer: span tracer + metrics registry + sampler + markers.

One :class:`RunObserver` serves one deployment (a single-channel
:class:`~repro.network.network.FabricNetwork` or a whole
:class:`~repro.channels.network.MultiChannelNetwork`).  It is only constructed
when :class:`~repro.observability.config.ObservabilityConfig` is enabled;
without it no bus listener, sampler event or profiler exists and the run is
bit-identical to a build without this package.

Everything the observer does is read-only with respect to the simulation: bus
callbacks record, sampler ticks read, the fault hook appends a marker.  No
RNG stream is ever drawn and no transaction is mutated, which is what lets
the golden-record determinism test pass *with tracing enabled*.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional

from repro.lifecycle.events import LifecycleBus, LifecycleEvent, LifecycleEventType
from repro.observability.config import ObservabilityConfig
from repro.observability.registry import MetricsRegistry, TimeSeriesSampler
from repro.observability.spans import BlockTimes, SpanNode, SpanTracer
from repro.sim.engine import Simulator
from repro.sim.profile import EngineProfiler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.controller import FaultController
    from repro.faults.schedule import FaultInjection


@dataclass
class ObservabilityData:
    """Everything one observed run exports — plain, picklable data.

    Rides on :attr:`repro.network.network.RunRecord.observability`, so it
    travels through the parallel runner and the result cache like any other
    run artifact.
    """

    spans: List[SpanNode] = field(default_factory=list)
    samples: List[Dict[str, float]] = field(default_factory=list)
    markers: List[dict] = field(default_factory=list)
    summary: dict = field(default_factory=dict)


class RunObserver:
    """Observes one run: lifecycle counters, spans, samples, fault markers."""

    def __init__(self, sim: Simulator, bus: LifecycleBus, config: ObservabilityConfig) -> None:
        config.validate()
        self.sim = sim
        self.bus = bus
        self.config = config
        self.registry = MetricsRegistry()
        self.tracer: Optional[SpanTracer] = SpanTracer(bus) if config.trace else None
        self.sampler: Optional[TimeSeriesSampler] = (
            TimeSeriesSampler(sim, config.sample_interval) if config.metrics else None
        )
        self.markers: List[dict] = []
        self._profiler: Optional[EngineProfiler] = None
        self._committed_origins: set = set()
        self._latency = self.registry.histogram("latency")
        bus.subscribe(None, self._on_event)
        if self.sampler is not None:
            self.sampler.add_source("pending_events", lambda: float(sim.pending_events))
            self.sampler.add_rate("engine_events_per_s", lambda: float(sim.processed_events))
            self.sampler.add_rate("submit_rate", self._read_counter("submitted"))
            self.sampler.add_rate("tps", self._read_counter("committed"))
            self.sampler.add_rate("goodput", self._read_counter("committed_requests"))
            self.sampler.add_rate("abort_rate", self._read_counter("aborted"))

    # -------------------------------------------------------------- listeners
    def _read_counter(self, name: str) -> Callable[[], float]:
        counter = self.registry.counter(name)
        return lambda: counter.value

    def _on_event(self, event: LifecycleEvent) -> None:
        self.registry.counter(event.type.value).inc()
        if event.type is LifecycleEventType.COMMITTED:
            tx = event.transaction
            if tx.origin_id not in self._committed_origins:
                self._committed_origins.add(tx.origin_id)
                self.registry.counter("committed_requests").inc()
            latency = tx.total_latency
            if latency is not None:
                self._latency.observe(latency)
        elif event.type is LifecycleEventType.ABORTED:
            failure = event.failure_type.value if event.failure_type is not None else "unknown"
            name = f"aborted/{failure}"
            if self.sampler is not None and name not in self.registry.snapshot()["counters"]:
                self.sampler.add_rate(f"abort_rate/{failure}", self._read_counter(name))
            self.registry.counter(name).inc()

    # ------------------------------------------------------------------ wiring
    def add_queue_probe(self, name: str, read: Callable[[], float]) -> None:
        """Sample a queue depth (``queue/<name>``) at every tick."""
        if self.sampler is not None:
            self.sampler.add_source(f"queue/{name}", lambda: float(read()))

    def watch_faults(self, controller: "FaultController") -> None:
        """Record every injection the controller applies as a trace marker."""
        controller.observer = self._on_injection

    def _on_injection(self, controller: "FaultController", injection: "FaultInjection") -> None:
        marker = {
            "time": self.sim.now,
            "kind": injection.kind.value,
            "target": injection.target,
        }
        if controller.channel is not None:
            marker["channel"] = controller.channel
        self.markers.append(marker)

    # --------------------------------------------------------------- run hooks
    def on_run_start(self, duration: float) -> None:
        """Pre-schedule the sampler ticks for the submission window (once)."""
        if self.sampler is not None:
            self.sampler.start(duration)

    @contextmanager
    def profile(self) -> Iterator[None]:
        """Profile the engine over the drain loop (when metrics are enabled).

        Leaves an externally attached :class:`EngineProfiler` alone, so the
        standalone context-manager usage keeps working alongside the observer.
        """
        if self.config.metrics and not self.sim.profiler_attached:
            self._profiler = EngineProfiler(self.sim)
            with self._profiler:
                yield
        else:
            yield

    def adopt_profiler(self, profiler: EngineProfiler) -> None:
        """Use an externally managed :class:`EngineProfiler` for the summary.

        The sharded execution path attaches one profiler per shard simulator
        itself (it wants engine stats even when metrics are off); adopting it
        lets :meth:`collect` embed the report exactly as :meth:`profile`
        would have.
        """
        self._profiler = profiler

    # ------------------------------------------------------------- collection
    def collect(
        self, block_times: Optional[BlockTimes] = None, final_time: Optional[float] = None
    ) -> ObservabilityData:
        """Assemble the run's exportable observability data."""
        if self.sampler is not None:
            self.sampler.sample_now(final_time if final_time is not None else self.sim.now)
        summary = self.registry.snapshot()
        if self._profiler is not None:
            summary["engine"] = self._profiler.report()
        return ObservabilityData(
            spans=self.tracer.finalize(block_times) if self.tracer is not None else [],
            samples=list(self.sampler.samples) if self.sampler is not None else [],
            markers=sorted(self.markers, key=lambda m: (m["time"], m["kind"], str(m["target"]))),
            summary=summary,
        )
