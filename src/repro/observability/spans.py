"""Span trees: one per transaction attempt, built from the lifecycle stream.

The :class:`SpanTracer` subscribes to the deployment's
:class:`~repro.lifecycle.events.LifecycleBus` — the bus invariant (emission
never touches the simulator or any RNG stream) is what makes tracing free of
side effects: a traced run stays bit-identical to an untraced one.  Stage
intervals come from the timestamps every :class:`~repro.ledger.block.Transaction`
already carries through the Execute-Order-Validate pipeline, refined post-run
with the block-cut times of the ledger (splitting the ordering queue into
block-cut wait and consensus).

Stage names are module constants so the exporters, the critical-path analyzer
and the metrics layer agree on one vocabulary:

``endorse``
    client submission → all endorsement responses collected (with one child
    span per endorsing peer, proposal arrival → response completion).
``submit``
    endorsement collected → arrival at the ordering service (client
    processing + network hop).
``2pc-prepare``
    cross-channel attempts only: the two-phase prepare window at the
    coordinator (lock acquisition → partner ack).
``block-wait``
    arrival at the orderer → the block containing the transaction is cut.
``consensus``
    block cut → consensus complete (the transaction is ordered).
``commit``
    ordered → validated and committed (or terminally failed) at the
    reference peer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ledger.block import Transaction
from repro.lifecycle.events import LifecycleBus, LifecycleEvent, LifecycleEventType

STAGE_ENDORSE = "endorse"
STAGE_SUBMIT = "submit"
STAGE_PREPARE = "2pc-prepare"
STAGE_BLOCK_WAIT = "block-wait"
STAGE_CONSENSUS = "consensus"
STAGE_COMMIT = "commit"

#: Every lifecycle stage, in pipeline order.
LIFECYCLE_STAGES = (
    STAGE_ENDORSE,
    STAGE_SUBMIT,
    STAGE_PREPARE,
    STAGE_BLOCK_WAIT,
    STAGE_CONSENSUS,
    STAGE_COMMIT,
)

#: Span categories: the root of an attempt, a lifecycle stage, one peer's leg.
CATEGORY_TX = "tx"
CATEGORY_STAGE = "stage"
CATEGORY_PEER = "peer"

#: ``channel -> block number -> block cut time`` (``None`` keys the classic
#: single-channel path, where transactions carry no channel index).
BlockTimes = Dict[Optional[int], Dict[int, float]]


@dataclass
class SpanNode:
    """One interval of simulated time, with nested child intervals.

    Plain data (no transaction references), so span trees pickle cheaply
    through the parallel runner and serialize deterministically.
    """

    name: str
    start: float
    end: float
    category: str = CATEGORY_STAGE
    args: Dict[str, object] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Length of the interval in simulated seconds."""
        return self.end - self.start

    def as_dict(self) -> dict:
        """The span tree as nested JSON-serializable data."""
        node: dict = {
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "end": self.end,
        }
        if self.args:
            node["args"] = dict(self.args)
        if self.children:
            node["children"] = [child.as_dict() for child in self.children]
        return node


def stage_durations(tx: Transaction, block_created_at: Optional[float] = None) -> Dict[str, float]:
    """Per-stage simulated time of one attempt, from its pipeline timestamps.

    Only stages the transaction actually reached appear; ``block_created_at``
    (the cut time of the block that carried the transaction) splits the
    ordering queue into ``block-wait`` and ``consensus``.  Works on any
    recorded transaction, traced or not — the metrics layer uses it for the
    per-stage latency breakdown without tracing enabled.
    """
    stages: Dict[str, float] = {}
    endorsed_at = tx.endorsement_completed_at
    terminal = tx.committed_at
    if endorsed_at is not None:
        stages[STAGE_ENDORSE] = endorsed_at - tx.submitted_at
    elif terminal is not None:
        # Never finished endorsement (watchdog timeout, fail-fast abort): the
        # whole attempt was spent in the endorsement stage.
        stages[STAGE_ENDORSE] = terminal - tx.submitted_at
    arrived_at = tx.arrived_at_orderer_at
    if endorsed_at is not None and arrived_at is not None:
        if tx.prepare_started_at is not None and tx.prepare_completed_at is not None:
            stages[STAGE_SUBMIT] = tx.prepare_started_at - endorsed_at
            stages[STAGE_PREPARE] = tx.prepare_completed_at - tx.prepare_started_at
        else:
            stages[STAGE_SUBMIT] = arrived_at - endorsed_at
    ordered_at = tx.ordered_at
    if arrived_at is not None and ordered_at is not None:
        if block_created_at is not None:
            cut_at = max(block_created_at, arrived_at)
            stages[STAGE_BLOCK_WAIT] = cut_at - arrived_at
            stages[STAGE_CONSENSUS] = ordered_at - cut_at
        else:
            stages[STAGE_BLOCK_WAIT] = ordered_at - arrived_at
    if ordered_at is not None and terminal is not None:
        stages[STAGE_COMMIT] = terminal - ordered_at
    return stages


def build_attempt_span(
    tx: Transaction,
    status: str,
    failure: Optional[str],
    end_time: float,
    block_created_at: Optional[float] = None,
) -> SpanNode:
    """Materialize the span tree of one transaction attempt.

    The root covers the whole attempt; children are the lifecycle stages the
    attempt reached, and the endorsement stage nests one span per endorsing
    peer (proposal arrival → response completion).  Retry lineage and
    cross-channel linkage travel in the root's ``args`` (``origin_tx_id``,
    ``attempt``, ``partner_channel``), so consumers can join attempts of the
    same logical request across the trace.
    """
    args: Dict[str, object] = {
        "tx_id": tx.tx_id,
        "origin_tx_id": tx.origin_id,
        "attempt": tx.attempt,
        "client": tx.client_name,
        "function": tx.function,
        "status": status,
    }
    if failure is not None:
        args["failure_type"] = failure
    if tx.channel is not None:
        args["channel"] = tx.channel
    if tx.partner_channel is not None:
        args["partner_channel"] = tx.partner_channel
    if tx.block_number is not None:
        args["block"] = tx.block_number
    if tx.validation_code is not None:
        args["validation_code"] = tx.validation_code.value
    root = SpanNode(
        name=CATEGORY_TX,
        start=tx.submitted_at,
        end=end_time,
        category=CATEGORY_TX,
        args=args,
    )

    endorsed_at = tx.endorsement_completed_at
    if endorsed_at is not None or tx.endorsements:
        endorse_end = endorsed_at if endorsed_at is not None else end_time
        endorse = SpanNode(STAGE_ENDORSE, tx.submitted_at, endorse_end)
        for response in tx.endorsements:
            received = response.received_at if response.received_at is not None else tx.submitted_at
            endorse.children.append(
                SpanNode(
                    name=response.peer_name,
                    start=received,
                    end=response.completed_at,
                    category=CATEGORY_PEER,
                    args={"org": response.org_name},
                )
            )
        root.children.append(endorse)
    elif end_time > tx.submitted_at:
        # The attempt died before any endorsement came back.
        root.children.append(SpanNode(STAGE_ENDORSE, tx.submitted_at, end_time))

    arrived_at = tx.arrived_at_orderer_at
    if endorsed_at is not None and arrived_at is not None:
        if tx.prepare_started_at is not None and tx.prepare_completed_at is not None:
            root.children.append(SpanNode(STAGE_SUBMIT, endorsed_at, tx.prepare_started_at))
            root.children.append(
                SpanNode(
                    STAGE_PREPARE,
                    tx.prepare_started_at,
                    tx.prepare_completed_at,
                    args={"partner_channel": tx.partner_channel},
                )
            )
        else:
            root.children.append(SpanNode(STAGE_SUBMIT, endorsed_at, arrived_at))
    ordered_at = tx.ordered_at
    if arrived_at is not None and ordered_at is not None:
        if block_created_at is not None:
            cut_at = max(block_created_at, arrived_at)
            root.children.append(SpanNode(STAGE_BLOCK_WAIT, arrived_at, cut_at))
            root.children.append(SpanNode(STAGE_CONSENSUS, cut_at, ordered_at))
        else:
            root.children.append(SpanNode(STAGE_BLOCK_WAIT, arrived_at, ordered_at))
    if ordered_at is not None:
        root.children.append(SpanNode(STAGE_COMMIT, ordered_at, end_time))
    return root


class SpanTracer:
    """Builds one span tree per transaction attempt from the lifecycle stream.

    Subscribes to every event of the bus; records which attempts exist (in
    first-submission order, which is deterministic) and how each terminated.
    The trees themselves are materialized once at :meth:`finalize`, when the
    ledgers' block-cut times are available for the block-wait split.
    """

    def __init__(self, bus: LifecycleBus) -> None:
        self._bus = bus
        self._attempts: Dict[str, dict] = {}
        self._order: List[str] = []
        bus.subscribe(None, self._on_event)

    def detach(self) -> None:
        """Stop listening (the collected attempts remain available)."""
        self._bus.unsubscribe(None, self._on_event)

    @property
    def attempts(self) -> int:
        """Number of transaction attempts observed so far."""
        return len(self._order)

    def _on_event(self, event: LifecycleEvent) -> None:
        tx = event.transaction
        entry = self._attempts.get(tx.tx_id)
        if entry is None:
            entry = {"tx": tx, "status": None, "failure": None, "end": None}
            self._attempts[tx.tx_id] = entry
            self._order.append(tx.tx_id)
        if event.type is LifecycleEventType.COMMITTED:
            entry["status"] = "committed"
            entry["end"] = event.time
        elif event.type is LifecycleEventType.ABORTED:
            entry["status"] = "aborted"
            entry["end"] = event.time
            if event.failure_type is not None:
                entry["failure"] = event.failure_type.value

    def finalize(self, block_times: Optional[BlockTimes] = None) -> List[SpanNode]:
        """Materialize every attempt's span tree, in submission order."""
        block_times = block_times or {}
        roots: List[SpanNode] = []
        for tx_id in self._order:
            entry = self._attempts[tx_id]
            tx: Transaction = entry["tx"]
            end = entry["end"]
            status = entry["status"]
            if end is None:
                # Never terminated (e.g. still pending when the run stopped).
                end = tx.committed_at if tx.committed_at is not None else tx.submitted_at
                status = status or "incomplete"
            created_at = None
            if tx.block_number is not None:
                created_at = block_times.get(tx.channel, {}).get(tx.block_number)
            roots.append(build_attempt_span(tx, status, entry["failure"], end, created_at))
        return roots
