"""repro — a reproduction of "Why Do My Blockchain Transactions Fail?" (SIGMOD 2021).

The package provides a discrete-event simulation of Hyperledger Fabric's
Execute-Order-Validate pipeline, the four use-case chaincodes and the synthetic
chaincode/workload generator of the paper, the three studied optimizations
(Fabric++, Streamchain, FabricSharp), a transaction-failure classifier
implementing the paper's formal definitions, and a benchmarking harness that
regenerates every table and figure of the evaluation.

Quickstart::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(arrival_rate=100, duration=10))
    print(result.failure_pct, result.mvcc_pct, result.endorsement_pct)
"""

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentResult,
    repetition_seed,
    run_experiment,
    run_repetition,
)
from repro.bench.runner import (
    ExperimentRunner,
    ProgressEvent,
    ResultCache,
    RunnerStats,
    SweepOutcome,
    SweepPlan,
)
from repro.chaincode import CHAINCODE_REGISTRY, create_chaincode
from repro.channels import (
    ChannelRouter,
    ChannelTopology,
    CrossChannelCoordinator,
    MultiChannelNetwork,
)
from repro.core.adaptive import AdaptiveBlockSizeController, BlockSizeTuner
from repro.core.analyzer import ChannelAnalysis, ExperimentAnalysis, LedgerAnalyzer
from repro.core.classifier import TransactionClassifier
from repro.core.failures import FailureType
from repro.core.metrics import ExperimentMetrics, FailureReport
from repro.core.recommendations import Recommendation, RecommendationEngine
from repro.errors import ReproError
from repro.fabric import available_variants, create_variant
from repro.faults import FaultConfig, FaultSchedule, parse_fault_spec
from repro.lifecycle import (
    LifecycleBus,
    LifecycleEvent,
    LifecycleEventType,
    RetryConfig,
    RetryController,
    RetryPolicy,
    available_retry_policies,
    create_retry_policy,
)
from repro.lifecycle.pipeline import build_network
from repro.network.config import CLUSTER_PRESETS, DatabaseType, NetworkConfig, TimingProfile
from repro.network.network import ChannelRecord, FabricNetwork, RunRecord
from repro.workload.spec import TransactionMix, WorkloadSpec
from repro.workload.workloads import (
    delete_heavy,
    insert_heavy,
    range_heavy,
    read_heavy,
    read_update_uniform,
    synthetic_workload,
    uniform_workload,
    update_heavy,
)

#: Single source of the library version; the CLI's ``--version`` flag and any
#: packaging metadata must read it from here.
__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "ProgressEvent",
    "ResultCache",
    "RunnerStats",
    "SweepOutcome",
    "SweepPlan",
    "repetition_seed",
    "run_experiment",
    "run_repetition",
    "CHAINCODE_REGISTRY",
    "create_chaincode",
    "ChannelAnalysis",
    "ChannelRecord",
    "ChannelRouter",
    "ChannelTopology",
    "CrossChannelCoordinator",
    "MultiChannelNetwork",
    "AdaptiveBlockSizeController",
    "BlockSizeTuner",
    "ExperimentAnalysis",
    "LedgerAnalyzer",
    "TransactionClassifier",
    "FailureType",
    "ExperimentMetrics",
    "FailureReport",
    "Recommendation",
    "RecommendationEngine",
    "ReproError",
    "available_variants",
    "create_variant",
    "FaultConfig",
    "FaultSchedule",
    "parse_fault_spec",
    "LifecycleBus",
    "LifecycleEvent",
    "LifecycleEventType",
    "RetryConfig",
    "RetryController",
    "RetryPolicy",
    "available_retry_policies",
    "create_retry_policy",
    "build_network",
    "CLUSTER_PRESETS",
    "DatabaseType",
    "NetworkConfig",
    "TimingProfile",
    "FabricNetwork",
    "RunRecord",
    "TransactionMix",
    "WorkloadSpec",
    "read_heavy",
    "insert_heavy",
    "update_heavy",
    "delete_heavy",
    "range_heavy",
    "read_update_uniform",
    "synthetic_workload",
    "uniform_workload",
]
