"""Configuration of the online isolation checker.

The default (disabled) configuration installs nothing at all: no bus
subscription, no graph, no per-transaction work — the run is bit-identical to
a build without the :mod:`repro.checker` package.  Because checking only
*observes* the committed history and never influences the simulation, the
configuration is also excluded from experiment cell hashes entirely (see
:func:`repro.bench.harness._canonical`): certifying a cell does not change
its identity, its per-repetition seeds, or its results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CheckerConfig:
    """Whether and how to certify the committed history of a run.

    ``enabled`` subscribes one streaming :class:`~repro.checker.checker.ChannelChecker`
    per channel slice to the lifecycle bus; ``witness_limit`` caps how many
    concrete anomaly witnesses each channel retains (violations beyond the cap
    are still *counted*, so verdicts never depend on the limit).
    """

    enabled: bool = False
    witness_limit: int = 4

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for unusable witness limits."""
        if self.witness_limit < 1:
            raise ConfigurationError(
                f"the witness limit must be at least 1, got {self.witness_limit}"
            )
