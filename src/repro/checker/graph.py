"""Incremental cycle detection for the serialization graphs.

The checker feeds dependency edges into an :class:`IncrementalDAG` one at a
time as transactions commit; the structure maintains an online topological
order with the Pearce-Kelly affected-region algorithm (the classic incremental
maintenance recipe PAPERS.md points at for streaming graph queries).  Inserting
an edge that is already consistent with the order costs O(1); an inconsistent
edge triggers a search bounded by the affected region — the nodes whose order
lies between the edge's endpoints — which stays tiny for the near-topological
insertion order a committed history produces.

When an edge would close a cycle the structure *refuses* it and returns the
existing path from the edge's target back to its source, which the checker
turns into an anomaly witness.  Rejecting the edge keeps the graph acyclic, so
checking continues past the first anomaly and later, independent cycles are
still detected.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

Node = Hashable


class IncrementalDAG:
    """A directed graph kept acyclic through an online topological order."""

    __slots__ = ("_order", "_next_order", "_out", "_in")

    def __init__(self) -> None:
        #: Current topological position of every node (unique ints).
        self._order: Dict[Node, int] = {}
        self._next_order = 0
        self._out: Dict[Node, List[Node]] = {}
        self._in: Dict[Node, List[Node]] = {}

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, node: Node) -> bool:
        return node in self._order

    def add_node(self, node: Node) -> None:
        """Register ``node`` (idempotent); new nodes sort after existing ones."""
        if node not in self._order:
            self._order[node] = self._next_order
            self._next_order += 1
            self._out[node] = []
            self._in[node] = []

    def add_edge(self, source: Node, target: Node) -> Optional[List[Node]]:
        """Insert ``source -> target``, or return the cycle it would close.

        Returns ``None`` on success.  When the edge would create a cycle the
        graph is left unchanged and the return value is the path
        ``[target, ..., source]`` along *existing* edges — prepending the
        refused ``source -> target`` edge closes the cycle.
        """
        order = self._order
        lower, upper = order[target], order[source]
        if upper < lower:
            # Already consistent with the topological order: O(1) insert.
            self._out[source].append(target)
            self._in[target].append(source)
            return None
        # Forward search from the target through the affected region
        # (orders in [lower, upper]); reaching the source means a cycle.
        parent: Dict[Node, Optional[Node]] = {target: None}
        stack = [target]
        forward: List[Node] = []
        while stack:
            node = stack.pop()
            forward.append(node)
            for successor in self._out[node]:
                if successor == source:
                    path = [source]
                    cursor: Optional[Node] = node
                    while cursor is not None:
                        path.append(cursor)
                        cursor = parent[cursor]
                    path.reverse()
                    return path
                if successor not in parent and order[successor] < upper:
                    parent[successor] = node
                    stack.append(successor)
        # No cycle: backward search from the source, then re-map both regions
        # onto the sorted pool of their old positions (Pearce-Kelly).
        seen = {source}
        stack = [source]
        backward: List[Node] = []
        while stack:
            node = stack.pop()
            backward.append(node)
            for predecessor in self._in[node]:
                if predecessor not in seen and order[predecessor] > lower:
                    seen.add(predecessor)
                    stack.append(predecessor)
        backward.sort(key=order.__getitem__)
        forward.sort(key=order.__getitem__)
        affected = backward + forward
        pool = sorted(order[node] for node in affected)
        for node, position in zip(affected, pool):
            order[node] = position
        self._out[source].append(target)
        self._in[target].append(source)
        return None
