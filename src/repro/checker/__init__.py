"""Online isolation checking of committed transaction histories.

An opt-in streaming checker (:class:`~repro.checker.checker.IsolationChecker`)
subscribes to each channel's lifecycle bus, incrementally maintains the
start-ordered serialization graph of the committed history, and certifies or
refutes serializability and snapshot isolation per channel — with a concrete
anomaly witness (the offending dependency cycle) on refutation.  Histories
can also be exported and re-checked offline (:mod:`repro.checker.history`,
the ``repro check`` CLI verb).
"""

from repro.checker.checker import (
    AnomalyWitness,
    ChannelChecker,
    ChannelIsolation,
    IsolationChecker,
    IsolationReport,
    WitnessEdge,
    merge_isolation_reports,
)
from repro.checker.config import CheckerConfig

__all__ = [
    "AnomalyWitness",
    "ChannelChecker",
    "ChannelIsolation",
    "CheckerConfig",
    "IsolationChecker",
    "IsolationReport",
    "WitnessEdge",
    "merge_isolation_reports",
]
