"""Committed-history export and offline re-checking (``repro-history/1``).

``repro run --check-isolation --history-out FILE`` writes the committed
history of a run — every transaction's position, read versions and written
keys, per channel — as a small JSON document, and ``repro check FILE``
replays it through the same streaming checker used online.  The format is
deliberately minimal: exactly the inputs the serialization-graph construction
needs, nothing else, so histories stay diffable and fabricating adversarial
ones in tests is a one-liner.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.checker.checker import ChannelChecker, ChannelIsolation, IsolationReport
from repro.errors import ConfigurationError
from repro.ledger.kvstore import Version

HISTORY_FORMAT = "repro-history/1"

#: Appended to every load error so the CLI always tells the user what the
#: command accepts.
VALID_INPUT_HINT = (
    "valid inputs: a JSON history document with format " + repr(HISTORY_FORMAT) + ", "
    "as written by 'repro run --check-isolation --history-out FILE'"
)


def history_document(record) -> Dict[str, object]:
    """The ``repro-history/1`` document of a :class:`~repro.network.network.RunRecord`."""
    channels: List[Dict[str, object]] = []
    if record.channel_records:
        units = [
            (channel.index, channel.record.ledger, channel.record.early_aborted)
            for channel in record.channel_records
        ]
    else:
        units = [(None, record.ledger, record.early_aborted)]
    for channel, ledger, early_aborted in units:
        committed: List[Dict[str, object]] = []
        aborted: List[str] = []
        for block in ledger.blocks:
            for tx in block.transactions:
                if tx.is_committed:
                    committed.append(_transaction_entry(tx))
                else:
                    aborted.append(tx.tx_id)
        aborted.extend(tx.tx_id for tx in early_aborted)
        channels.append({"channel": channel, "committed": committed, "aborted": aborted})
    return {
        "format": HISTORY_FORMAT,
        "variant": record.variant_name,
        "chaincode": record.chaincode_name,
        "seed": record.seed,
        "channels": channels,
    }


def _transaction_entry(tx) -> Dict[str, object]:
    rwset = tx.rwset
    reads: List[List[object]] = []
    writes: List[List[object]] = []
    if rwset is not None:
        for key, version in rwset.all_reads():
            reads.append(
                [key, None if version is None else [version.block_number, version.tx_number]]
            )
        for write in rwset.writes:
            writes.append([write.key, bool(write.is_delete)])
    return {
        "tx": tx.tx_id,
        "block": tx.block_number,
        "index": tx.tx_index,
        "reads": reads,
        "writes": writes,
    }


def write_history(path, record) -> None:
    """Write the committed history of ``record`` to ``path`` as JSON."""
    document = history_document(record)
    Path(path).write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def load_history(path) -> Dict[str, object]:
    """Load and validate a history document, or raise :class:`ConfigurationError`."""
    target = Path(path)
    if not target.is_file():
        raise ConfigurationError(f"history file {str(path)!r} does not exist; {VALID_INPUT_HINT}")
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"history file {str(path)!r} is not a JSON document ({error}); {VALID_INPUT_HINT}"
        ) from error
    if not isinstance(document, dict) or document.get("format") != HISTORY_FORMAT:
        raise ConfigurationError(
            f"history file {str(path)!r} is not a {HISTORY_FORMAT} document; {VALID_INPUT_HINT}"
        )
    if not isinstance(document.get("channels"), list):
        raise ConfigurationError(
            f"history file {str(path)!r} has no channel list; {VALID_INPUT_HINT}"
        )
    return document


def check_document(document: Dict[str, object], witness_limit: int = 4) -> IsolationReport:
    """Re-check a loaded history document through the streaming checker."""
    channels: List[ChannelIsolation] = []
    try:
        for channel_document in document["channels"]:
            checker = ChannelChecker(
                channel=channel_document.get("channel"), witness_limit=witness_limit
            )
            committed = sorted(
                channel_document.get("committed", ()),
                key=lambda entry: (entry["block"], entry["index"]),
            )
            for entry in committed:
                checker.observe_commit(_HistoryTransaction(entry))
            for _ in channel_document.get("aborted", ()):
                checker.observe_abort()
            channels.append(checker.finalize())
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ConfigurationError(
            f"malformed history document ({error!r}); {VALID_INPUT_HINT}"
        ) from error
    return IsolationReport(channels=channels)


def check_history(path, witness_limit: int = 4) -> IsolationReport:
    """Load ``path`` and re-check it (the ``repro check`` entry point)."""
    return check_document(load_history(path), witness_limit=witness_limit)


class _HistoryTransaction:
    """Duck-typed transaction view over one committed history entry."""

    __slots__ = ("tx_id", "block_number", "tx_index", "rwset")

    def __init__(self, entry: Dict[str, object]) -> None:
        self.tx_id = str(entry["tx"])
        self.block_number = int(entry["block"])
        self.tx_index = int(entry["index"])
        self.rwset = _HistoryRWSet(entry["reads"], entry["writes"])


class _HistoryRWSet:
    """Just enough of a :class:`~repro.ledger.rwset.ReadWriteSet` for checking."""

    __slots__ = ("reads", "writes")

    def __init__(self, reads, writes) -> None:
        self.reads: List[Tuple[str, Optional[Version]]] = [
            (str(key), None if version is None else Version(int(version[0]), int(version[1])))
            for key, version in reads
        ]
        self.writes: List[_HistoryWrite] = [
            _HistoryWrite(str(key), bool(is_delete)) for key, is_delete in writes
        ]

    def all_reads(self):
        return self.reads


class _HistoryWrite:
    __slots__ = ("key", "is_delete")

    def __init__(self, key: str, is_delete: bool) -> None:
        self.key = key
        self.is_delete = is_delete
