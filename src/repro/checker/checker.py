"""Streaming isolation checker over the committed transaction history.

The checker certifies (or refutes, with a concrete witness) two isolation
levels for every channel of a run, straight from the lifecycle event stream:

* **Serializability** — the start-ordered serialization graph (Adya's DSG)
  over the committed transactions is acyclic.  Nodes are committed
  transactions; edges are the three classic dependencies, keyed by the
  :class:`~repro.ledger.kvstore.Version` each committed write installs
  (``Version(block, tx)`` — the per-key version order *is* the commit order):

  - ``ww`` — the installer of version ``v_i`` of a key to the installer of
    the next version ``v_{i+1}``;
  - ``wr`` — the installer of a version to every transaction that read it;
  - ``rw`` (anti-dependency) — a reader of version ``v_i`` to the installer
    of ``v_{i+1}``, the write that overwrote what the reader saw.  Reads
    that observed *absence* (a nil version) anti-depend on the installer
    that ended the absence interval they read from.

* **Snapshot isolation** — following the black-box SI checking reduction
  (arxiv 2301.07313, after Cerone & Gotsman), SI holds iff
  ``G_SI = dep ∪ (rw ; dep)`` is acyclic, where ``dep = ww ∪ wr``: every
  anti-dependency must be immediately "absorbed" by a dependency before it
  can contribute to a cycle.  The checker maintains ``G_SI`` alongside the
  DSG by composing each new ``rw`` edge with the dependency edges already
  leaving its target (and each new dependency edge with the ``rw`` edges
  already entering its source).  A composed edge that starts and ends at the
  same transaction is itself an SI violation.  Because every ``G_SI`` cycle
  expands to a DSG cycle, the verdicts are monotone: a serializable history
  always certifies SI as well.

Both graphs are maintained *incrementally* as COMMITTED events stream in —
per-key version chains resolve each read to its installer, eagerly emit the
anti-dependency to the chain successor, and patch the affected edges when a
version arrives out of order — with online cycle detection through the
Pearce-Kelly structure in :mod:`repro.checker.graph`.  A read whose version
is never installed by any committed transaction (a read *from an aborted or
phantom writer*) refutes read atomicity outright and is reported as a
``dangling-read`` witness.

Witnesses record the offending transaction cycle as the exact sequence of
dependency edges (source, target, kind, key); composed ``G_SI`` edges are
expanded back into their underlying ``rw`` + dependency pair so every edge of
a witness is a real single dependency the brute-force oracle can re-derive.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.checker.config import CheckerConfig
from repro.checker.graph import IncrementalDAG
from repro.ledger.kvstore import Version
from repro.lifecycle.events import LifecycleBus, LifecycleEvent, LifecycleEventType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ledger.block import Transaction

__all__ = [
    "AnomalyWitness",
    "ChannelChecker",
    "ChannelIsolation",
    "IsolationChecker",
    "IsolationReport",
    "WitnessEdge",
    "merge_isolation_reports",
]

#: Isolation levels a witness refutes, strongest requirement first.
LEVEL_SERIALIZABLE = "serializable"
LEVEL_SNAPSHOT_ISOLATION = "snapshot-isolation"
LEVEL_READ_ATOMICITY = "read-atomicity"

#: Verdict strings surfaced on reports, metrics and the CLI.
VERDICT_SERIALIZABLE = "CERTIFIED-SERIALIZABLE"
VERDICT_SI = "CERTIFIED-SI"
VERDICT_REFUTED = "REFUTED"


@dataclass(frozen=True)
class WitnessEdge:
    """One dependency edge of an anomaly witness cycle."""

    source: str
    target: str
    #: ``"ww"``, ``"wr"`` or ``"rw"``.
    kind: str
    #: The key whose version chain induced the dependency.
    key: str

    def as_dict(self) -> Dict[str, str]:
        return {"source": self.source, "target": self.target, "kind": self.kind, "key": self.key}

    def __str__(self) -> str:
        return f"{self.source} -{self.kind}[{self.key}]-> {self.target}"


@dataclass(frozen=True)
class AnomalyWitness:
    """A concrete refutation: an edge cycle, or a read from a phantom writer."""

    #: The strongest isolation level this witness refutes (see ``LEVEL_*``).
    level: str
    #: ``"cycle"`` or ``"dangling-read"``.
    kind: str
    #: The offending dependency cycle, edge by edge (empty for dangling reads).
    cycle: Tuple[WitnessEdge, ...] = ()
    description: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "kind": self.kind,
            "cycle": [edge.as_dict() for edge in self.cycle],
            "description": self.description,
        }


@dataclass
class ChannelIsolation:
    """Verdict and evidence for one channel's committed history."""

    channel: Optional[int]
    committed: int = 0
    aborted: int = 0
    reads: int = 0
    writes: int = 0
    #: Dependency edges by kind (``si-composed`` counts ``rw ; dep`` edges).
    edges: Dict[str, int] = field(default_factory=dict)
    serializable_violations: int = 0
    si_violations: int = 0
    dangling_reads: int = 0
    #: Retained witnesses, capped at the configured ``witness_limit``.
    anomalies: Tuple[AnomalyWitness, ...] = ()

    @property
    def serializable(self) -> bool:
        return self.serializable_violations == 0 and self.dangling_reads == 0

    @property
    def snapshot_isolation(self) -> bool:
        return self.si_violations == 0 and self.dangling_reads == 0

    @property
    def verdict(self) -> str:
        if self.serializable:
            return VERDICT_SERIALIZABLE
        if self.snapshot_isolation:
            return VERDICT_SI
        return VERDICT_REFUTED

    def as_dict(self) -> Dict[str, object]:
        return {
            "channel": self.channel,
            "verdict": self.verdict,
            "serializable": self.serializable,
            "snapshot_isolation": self.snapshot_isolation,
            "committed": self.committed,
            "aborted": self.aborted,
            "reads": self.reads,
            "writes": self.writes,
            "edges": dict(self.edges),
            "serializable_violations": self.serializable_violations,
            "si_violations": self.si_violations,
            "dangling_reads": self.dangling_reads,
            "anomalies": [witness.as_dict() for witness in self.anomalies],
        }


@dataclass
class IsolationReport:
    """The run-level verdict: one :class:`ChannelIsolation` per channel."""

    channels: List[ChannelIsolation] = field(default_factory=list)

    @property
    def serializable(self) -> bool:
        return all(channel.serializable for channel in self.channels)

    @property
    def snapshot_isolation(self) -> bool:
        return all(channel.snapshot_isolation for channel in self.channels)

    @property
    def verdict(self) -> str:
        if self.serializable:
            return VERDICT_SERIALIZABLE
        if self.snapshot_isolation:
            return VERDICT_SI
        return VERDICT_REFUTED

    def certifies(self, level: str) -> bool:
        """Whether every channel certifies at ``level`` (a ``LEVEL_*`` value)."""
        if level == LEVEL_SERIALIZABLE:
            return self.serializable
        if level == LEVEL_SNAPSHOT_ISOLATION:
            return self.snapshot_isolation
        raise ValueError(f"unknown isolation level {level!r}")

    @property
    def anomaly_count(self) -> int:
        return sum(
            channel.serializable_violations + channel.dangling_reads
            for channel in self.channels
        )

    def summary(self) -> Dict[str, object]:
        """JSON-friendly digest for metrics, CLI output and fingerprints."""
        return {
            "verdict": self.verdict,
            "serializable": self.serializable,
            "snapshot_isolation": self.snapshot_isolation,
            "committed": sum(channel.committed for channel in self.channels),
            "anomalies": self.anomaly_count,
            "channels": [channel.as_dict() for channel in self.channels],
        }


def merge_isolation_reports(
    parts: Iterable[Optional[IsolationReport]],
) -> Optional[IsolationReport]:
    """Combine per-channel reports into one run-level report.

    Returns ``None`` when any part is missing (checking was not enabled on
    every slice), so a partial certification is never presented as a verdict.
    """
    merged: List[ChannelIsolation] = []
    for part in parts:
        if part is None:
            return None
        merged.extend(part.channels)
    return IsolationReport(channels=merged)


class _Entry:
    """One installed version on a key's chain."""

    __slots__ = ("version", "node", "is_delete", "readers")

    def __init__(self, version: Version, node: str, is_delete: bool) -> None:
        self.version = version
        self.node = node
        self.is_delete = is_delete
        #: Transactions that read this version (or, for a tombstone, the
        #: absence interval it opens) — the sources of ``rw`` edges to the
        #: chain successor.
        self.readers: List[str] = []


class _Chain:
    """The version chain of one key: installs in version order."""

    __slots__ = ("versions", "entries", "head_readers")

    def __init__(self) -> None:
        self.versions: List[Version] = []
        self.entries: List[_Entry] = []
        #: Readers of the initial state (genesis version or pre-install
        #: absence) — anti-dependent on the first real installer.
        self.head_readers: List[str] = []


class ChannelChecker:
    """Incremental DSG / ``G_SI`` maintenance for one channel's history.

    Feed committed transactions through :meth:`observe_commit` (any order
    works; the eager edges are patched when a version arrives out of order),
    count terminal failures with :meth:`observe_abort`, then call
    :meth:`finalize` once for the :class:`ChannelIsolation` verdict.
    """

    def __init__(self, channel: Optional[int] = None, witness_limit: int = 4) -> None:
        self._channel = channel
        self._witness_limit = witness_limit
        self._chains: Dict[str, _Chain] = {}
        #: Reads awaiting their installer: (key, version) -> reader nodes.
        self._pending: Dict[Tuple[str, Version], List[str]] = {}
        self._dsg = IncrementalDAG()
        self._gsi = IncrementalDAG()
        #: Edge -> (kind, key) of its first sighting, for witness rendering.
        self._dsg_labels: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self._gsi_labels: Dict[Tuple[str, str], Tuple] = {}
        #: Composition indexes: rw edges into a node / dep edges out of it.
        self._rw_edges: Set[Tuple[str, str]] = set()
        self._dep_edges: Set[Tuple[str, str]] = set()
        self._rw_in: Dict[str, List[Tuple[str, str]]] = {}
        self._dep_out: Dict[str, List[Tuple[str, str, str]]] = {}
        self._edge_counts = {"ww": 0, "wr": 0, "rw": 0, "si-composed": 0}
        self._committed = 0
        self._aborted = 0
        self._reads = 0
        self._writes = 0
        self._serializable_violations = 0
        self._si_violations = 0
        self._dangling_reads = 0
        self._anomalies: List[AnomalyWitness] = []
        self._report: Optional[ChannelIsolation] = None

    # ------------------------------------------------------------- observation
    def observe_commit(self, tx: "Transaction") -> None:
        """Fold one committed transaction into the serialization graphs."""
        rwset = tx.rwset
        if rwset is None or tx.block_number is None:
            return
        node = tx.tx_id
        position = Version(tx.block_number, tx.tx_index)
        self._committed += 1
        self._dsg.add_node(node)
        self._gsi.add_node(node)
        # Reads first (deduplicated — point and range reads may overlap), so
        # the transaction's own writes below resolve against the pre-state.
        seen: Set[Tuple[str, Optional[Version]]] = set()
        for key, version in rwset.all_reads():
            if (key, version) in seen:
                continue
            seen.add((key, version))
            self._read(node, position, key, version)
        self._reads += len(seen)
        # One installed version per written key (the last write wins, exactly
        # like the validator's staged write batch).
        writes: Dict[str, bool] = {}
        for write in rwset.writes:
            writes[write.key] = bool(write.is_delete)
        for key, is_delete in writes.items():
            self._install(node, position, key, is_delete)
        self._writes += len(writes)

    def observe_abort(self) -> None:
        """Count one terminally failed transaction (never enters the graphs)."""
        self._aborted += 1

    # ----------------------------------------------------------- version chains
    def _chain(self, key: str) -> _Chain:
        chain = self._chains.get(key)
        if chain is None:
            chain = self._chains[key] = _Chain()
        return chain

    def _read(self, node: str, position: Version, key: str, version: Optional[Version]) -> None:
        if version is not None and version.block_number > 0:
            chain = self._chains.get(key)
            if chain is not None:
                index = bisect_right(chain.versions, version) - 1
                if index >= 0 and chain.versions[index] == version:
                    self._attach_reader(chain, index, node, key)
                    return
            # The installer has not committed (yet): park the read.  Still
            # unresolved at finalize, it is a read from a phantom writer.
            self._pending.setdefault((key, version), []).append(node)
            return
        chain = self._chain(key)
        if version is None:
            # Absence read: resolve to the latest absence interval at or
            # before the reader's own commit position — a tombstone if the
            # key was deleted, the initial state otherwise.
            index = bisect_right(chain.versions, position) - 1
            while index >= 0 and not chain.entries[index].is_delete:
                index -= 1
            if index >= 0:
                self._attach_reader(chain, index, node, key)
                return
        # Genesis version or pre-install absence: an initial-state read.
        chain.head_readers.append(node)
        if chain.entries:
            self._rw_edge(node, chain.entries[0].node, key)

    def _attach_reader(self, chain: _Chain, index: int, node: str, key: str) -> None:
        entry = chain.entries[index]
        self._dep_edge(entry.node, node, "wr", key)
        entry.readers.append(node)
        if index + 1 < len(chain.entries):
            self._rw_edge(node, chain.entries[index + 1].node, key)

    def _install(self, node: str, position: Version, key: str, is_delete: bool) -> None:
        chain = self._chain(key)
        index = bisect_right(chain.versions, position)
        if index > 0:
            previous = chain.entries[index - 1]
            self._dep_edge(previous.node, node, "ww", key)
            readers = previous.readers
        else:
            readers = chain.head_readers
        for reader in readers:
            self._rw_edge(reader, node, key)
        chain.versions.insert(index, position)
        chain.entries.insert(index, _Entry(position, node, is_delete))
        if index + 1 < len(chain.entries):
            # Out-of-order install: the chain successor already exists, so the
            # forward ww edge is emitted here instead of by a later install.
            self._dep_edge(node, chain.entries[index + 1].node, "ww", key)
        for reader in self._pending.pop((key, position), ()):
            self._attach_reader(chain, index, reader, key)

    # ------------------------------------------------------------------- edges
    def _dep_edge(self, source: str, target: str, kind: str, key: str) -> None:
        if source == target:
            return
        self._dsg_insert(source, target, kind, key)
        if (source, target) in self._dep_edges:
            return
        self._dep_edges.add((source, target))
        self._dep_out.setdefault(source, []).append((target, kind, key))
        # G_SI: the dependency itself, plus its composition with every rw
        # edge already entering the source.
        self._gsi_insert(source, target, ("dep", kind, key))
        for reader, read_key in self._rw_in.get(source, ()):
            self._gsi_insert(reader, target, ("composed", source, read_key, kind, key))

    def _rw_edge(self, source: str, target: str, key: str) -> None:
        if source == target:
            return
        self._dsg_insert(source, target, "rw", key)
        if (source, target) in self._rw_edges:
            return
        self._rw_edges.add((source, target))
        self._rw_in.setdefault(target, []).append((source, key))
        # G_SI: compose with every dependency already leaving the target.
        for successor, kind, dep_key in self._dep_out.get(target, ()):
            self._gsi_insert(source, successor, ("composed", target, key, kind, dep_key))

    def _dsg_insert(self, source: str, target: str, kind: str, key: str) -> None:
        edge = (source, target)
        if edge in self._dsg_labels:
            return
        self._dsg_labels[edge] = (kind, key)
        self._edge_counts[kind] += 1
        cycle = self._dsg.add_edge(source, target)
        if cycle is not None:
            self._serializable_violations += 1
            self._record_cycle(LEVEL_SERIALIZABLE, source, cycle, gsi=False)

    def _gsi_insert(self, source: str, target: str, label: Tuple) -> None:
        if source == target:
            # A composed rw;dep edge closing on its own source is already a
            # G_SI cycle: reader -rw-> via -dep-> reader.
            self._si_violations += 1
            if len(self._anomalies) < self._witness_limit:
                _, via, read_key, dep_kind, dep_key = label
                cycle = (
                    WitnessEdge(source, via, "rw", read_key),
                    WitnessEdge(via, source, dep_kind, dep_key),
                )
                self._anomalies.append(
                    AnomalyWitness(
                        level=LEVEL_SNAPSHOT_ISOLATION,
                        kind="cycle",
                        cycle=cycle,
                        description=_describe_cycle(cycle),
                    )
                )
            return
        edge = (source, target)
        if edge in self._gsi_labels:
            return
        self._gsi_labels[edge] = label
        if label[0] == "composed":
            self._edge_counts["si-composed"] += 1
        cycle = self._gsi.add_edge(source, target)
        if cycle is not None:
            self._si_violations += 1
            self._record_cycle(LEVEL_SNAPSHOT_ISOLATION, source, cycle, gsi=True)

    # --------------------------------------------------------------- witnesses
    def _record_cycle(self, level: str, source: str, path: Sequence[str], gsi: bool) -> None:
        if len(self._anomalies) >= self._witness_limit:
            return
        # ``path`` is [target, ..., source] along existing edges; the refused
        # edge source -> target closes the cycle.
        pairs = [(source, path[0])] + list(zip(path, path[1:]))
        edges: List[WitnessEdge] = []
        for u, v in pairs:
            if gsi:
                label = self._gsi_labels[(u, v)]
                if label[0] == "dep":
                    edges.append(WitnessEdge(u, v, label[1], label[2]))
                else:
                    _, via, read_key, dep_kind, dep_key = label
                    edges.append(WitnessEdge(u, via, "rw", read_key))
                    edges.append(WitnessEdge(via, v, dep_kind, dep_key))
            else:
                kind, key = self._dsg_labels[(u, v)]
                edges.append(WitnessEdge(u, v, kind, key))
        cycle = tuple(edges)
        self._anomalies.append(
            AnomalyWitness(
                level=level, kind="cycle", cycle=cycle, description=_describe_cycle(cycle)
            )
        )

    # ---------------------------------------------------------------- verdicts
    def finalize(self) -> ChannelIsolation:
        """Resolve leftover pending reads and freeze the channel verdict."""
        if self._report is None:
            for (key, version), readers in sorted(self._pending.items()):
                for reader in readers:
                    self._dangling_reads += 1
                    if len(self._anomalies) < self._witness_limit:
                        self._anomalies.append(
                            AnomalyWitness(
                                level=LEVEL_READ_ATOMICITY,
                                kind="dangling-read",
                                description=(
                                    f"transaction {reader} read version {version} of "
                                    f"key {key!r}, which no committed transaction installed"
                                ),
                            )
                        )
            self._pending.clear()
            self._report = ChannelIsolation(
                channel=self._channel,
                committed=self._committed,
                aborted=self._aborted,
                reads=self._reads,
                writes=self._writes,
                edges={kind: count for kind, count in self._edge_counts.items() if count},
                serializable_violations=self._serializable_violations,
                si_violations=self._si_violations,
                dangling_reads=self._dangling_reads,
                anomalies=tuple(self._anomalies),
            )
        return self._report


def _describe_cycle(cycle: Tuple[WitnessEdge, ...]) -> str:
    return " , ".join(str(edge) for edge in cycle)


class IsolationChecker:
    """Bus adapter: one :class:`ChannelChecker` subscribed to a channel slice.

    Subscribes to COMMITTED and ABORTED only; locally answered read-only
    queries (committed with no block) never reach the ledger and are skipped.
    Subscription never touches the simulator or any RNG stream, so an enabled
    checker leaves the run bit-identical — the same invariant the
    observability subsystem relies on.
    """

    def __init__(
        self, bus: LifecycleBus, config: CheckerConfig, channel: Optional[int] = None
    ) -> None:
        self.checker = ChannelChecker(channel=channel, witness_limit=config.witness_limit)
        bus.subscribe(LifecycleEventType.COMMITTED, self._on_committed)
        bus.subscribe(LifecycleEventType.ABORTED, self._on_aborted)

    def _on_committed(self, event: LifecycleEvent) -> None:
        tx = event.transaction
        if tx.block_number is None or tx.rwset is None:
            return
        self.checker.observe_commit(tx)

    def _on_aborted(self, event: LifecycleEvent) -> None:
        self.checker.observe_abort()

    def report(self) -> IsolationReport:
        """The run-level report for this (single-channel) slice."""
        return IsolationReport(channels=[self.checker.finalize()])
