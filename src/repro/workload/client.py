"""Client arrival processes.

The paper defines the *transaction arrival rate* as the combined number of
transactions sent per second from all clients (Section 4.5); clients submit
transactions open-loop, i.e. independently of how fast the network commits
them.  The :class:`ArrivalProcess` produces the inter-arrival times of a single
client given its share of the total rate.
"""

from __future__ import annotations

import random
from math import log as _log

from repro.errors import WorkloadError


class ArrivalProcess:
    """Open-loop arrival process for one client."""

    def __init__(self, rate: float, rng: random.Random, poisson: bool = True) -> None:
        if rate <= 0:
            raise WorkloadError(f"the arrival rate must be positive, got {rate}")
        self.rate = float(rate)
        self.rng = rng
        self.poisson = poisson

    def next_interarrival(self) -> float:
        """Seconds until the next transaction of this client.

        Poisson arrivals (exponential inter-arrival times) by default; when
        ``poisson`` is False a deterministic constant-rate schedule is used,
        which is useful for fully reproducible unit tests.
        """
        if self.poisson:
            return self.rng.expovariate(self.rate)
        return 1.0 / self.rate

    def schedule(self, duration: float) -> list[float]:
        """All arrival times in ``[0, duration)`` for this client.

        The Poisson path inlines ``expovariate`` (CPython:
        ``-log(1.0 - random()) / lambd``) with the uniform source hoisted.
        The number of draws is data-dependent and the stream is shared with
        the owning client's other decisions, so the draws replay the exact
        per-call loop — one uniform per arrival, identical values and final
        RNG state — rather than over-drawing a buffer.
        """
        if duration < 0:
            raise WorkloadError(f"the schedule duration must be >= 0, got {duration}")
        arrivals: list[float] = []
        if self.poisson:
            rate = self.rate
            random_ = self.rng.random
            append = arrivals.append
            clock = -_log(1.0 - random_()) / rate
            while clock < duration:
                append(clock)
                clock += -_log(1.0 - random_()) / rate
            return arrivals
        clock = self.next_interarrival()
        while clock < duration:
            arrivals.append(clock)
            clock += self.next_interarrival()
        return arrivals
