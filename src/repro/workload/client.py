"""Client arrival processes.

The paper defines the *transaction arrival rate* as the combined number of
transactions sent per second from all clients (Section 4.5); clients submit
transactions open-loop, i.e. independently of how fast the network commits
them.  The :class:`ArrivalProcess` produces the inter-arrival times of a single
client given its share of the total rate.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError


class ArrivalProcess:
    """Open-loop arrival process for one client."""

    def __init__(self, rate: float, rng: random.Random, poisson: bool = True) -> None:
        if rate <= 0:
            raise WorkloadError(f"the arrival rate must be positive, got {rate}")
        self.rate = float(rate)
        self.rng = rng
        self.poisson = poisson

    def next_interarrival(self) -> float:
        """Seconds until the next transaction of this client.

        Poisson arrivals (exponential inter-arrival times) by default; when
        ``poisson`` is False a deterministic constant-rate schedule is used,
        which is useful for fully reproducible unit tests.
        """
        if self.poisson:
            return self.rng.expovariate(self.rate)
        return 1.0 / self.rate

    def schedule(self, duration: float) -> list[float]:
        """All arrival times in ``[0, duration)`` for this client."""
        if duration < 0:
            raise WorkloadError(f"the schedule duration must be >= 0, got {duration}")
        arrivals = []
        clock = self.next_interarrival()
        while clock < duration:
            arrivals.append(clock)
            clock += self.next_interarrival()
        return arrivals
