"""Canonical workloads of the paper.

Two families are provided:

* **Use-case workloads** — a uniform mix over the invocable functions of the
  EHR, DV, SCM and DRM chaincodes (the paper's default "Uniform" workload of
  Table 3).
* **Synthetic workloads on genChain** — the read-heavy (RH), insert-heavy (IH),
  update-heavy (UH), delete-heavy (DH) and range-heavy (RaH) workloads of
  Section 4.4: 80 % of the "x" transaction type and a uniform distribution of
  the four other types; plus the uniform read/update workload used for the
  Zipfian-skew experiments.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import WorkloadError
from repro.workload.spec import TransactionMix, WorkloadSpec

#: genChain function names by transaction type.
_GENCHAIN_FUNCTIONS = {
    "read": "readKey",
    "insert": "insertKey",
    "update": "updateKey",
    "delete": "deleteKey",
    "range": "rangeRead",
}


def _heavy_mix(heavy: str, heavy_share: float = 0.8, include_range: bool = True) -> TransactionMix:
    """80 % of the heavy type, the rest split uniformly over the other types.

    ``include_range=False`` drops range reads from the minority share; this is
    needed to run the synthetic workloads on FabricSharp, which does not
    support range queries (paper Section 5.4.3).
    """
    if heavy not in _GENCHAIN_FUNCTIONS:
        raise WorkloadError(f"unknown genChain transaction type {heavy!r}")
    others = [
        name
        for key, name in _GENCHAIN_FUNCTIONS.items()
        if key != heavy and (include_range or key != "range")
    ]
    weights: Dict[str, float] = {_GENCHAIN_FUNCTIONS[heavy]: heavy_share}
    for name in others:
        weights[name] = (1.0 - heavy_share) / len(others)
    return TransactionMix.from_dict(weights)


def _genchain_spec(name: str, mix: TransactionMix, description: str, **chaincode_kwargs) -> WorkloadSpec:
    kwargs = {"num_keys": 100_000}
    kwargs.update(chaincode_kwargs)
    return WorkloadSpec(
        name=name,
        chaincode="genChain",
        mix=mix,
        chaincode_kwargs=kwargs,
        description=description,
    )


def read_heavy(include_range: bool = True, **chaincode_kwargs) -> WorkloadSpec:
    """RH: 80 % reads (Section 4.4)."""
    mix = _heavy_mix("read", include_range=include_range)
    return _genchain_spec("ReadHeavy", mix, "80% read transactions", **chaincode_kwargs)


def insert_heavy(include_range: bool = True, **chaincode_kwargs) -> WorkloadSpec:
    """IH: 80 % inserts of unique keys — essentially conflict-free."""
    mix = _heavy_mix("insert", include_range=include_range)
    return _genchain_spec("InsertHeavy", mix, "80% insert transactions", **chaincode_kwargs)


def update_heavy(include_range: bool = True, **chaincode_kwargs) -> WorkloadSpec:
    """UH: 80 % read-modify-write updates — the most conflict-prone workload."""
    mix = _heavy_mix("update", include_range=include_range)
    return _genchain_spec("UpdateHeavy", mix, "80% update transactions", **chaincode_kwargs)


def delete_heavy(include_range: bool = True, **chaincode_kwargs) -> WorkloadSpec:
    """DH: 80 % deletes of unique keys — essentially conflict-free."""
    mix = _heavy_mix("delete", include_range=include_range)
    return _genchain_spec("DeleteHeavy", mix, "80% delete transactions", **chaincode_kwargs)


def range_heavy(include_range: bool = True, **chaincode_kwargs) -> WorkloadSpec:
    """RaH: 80 % range reads of 2, 4 or 8 keys."""
    return _genchain_spec(
        "RangeHeavy", _heavy_mix("range"), "80% range-read transactions", **chaincode_kwargs
    )


def read_update_uniform(**chaincode_kwargs) -> WorkloadSpec:
    """The uniform read/update workload used for the Zipfian-skew experiments.

    The paper generates "a uniform workload of read and update transactions
    with 3 different key distributions (Zipfian skew: 0, 1, 2)"; the accessed
    key pool is restricted so that even the skew-0 case observes conflicts.
    """
    kwargs = {"active_keys": 2_000}
    kwargs.update(chaincode_kwargs)
    mix = TransactionMix.from_dict({"readKey": 0.5, "updateKey": 0.5})
    return _genchain_spec("ReadUpdateUniform", mix, "50% read / 50% update", **kwargs)


#: The five synthetic workloads keyed by the abbreviations used in the figures.
SYNTHETIC_WORKLOADS = {
    "RH": read_heavy,
    "IH": insert_heavy,
    "UH": update_heavy,
    "RaH": range_heavy,
    "DH": delete_heavy,
}


def synthetic_workload(abbreviation: str, include_range: bool = True, **chaincode_kwargs) -> WorkloadSpec:
    """Look up a synthetic workload by its figure abbreviation (RH/IH/UH/RaH/DH)."""
    try:
        factory = SYNTHETIC_WORKLOADS[abbreviation]
    except KeyError as exc:
        known = ", ".join(sorted(SYNTHETIC_WORKLOADS))
        raise WorkloadError(
            f"unknown synthetic workload {abbreviation!r}; known workloads: {known}"
        ) from exc
    return factory(include_range=include_range, **chaincode_kwargs)


#: Function mixes for the use-case chaincodes' default ("Uniform") workload.
_USE_CASE_FUNCTIONS = {
    "EHR": [
        "addEhr",
        "grantProfileAccess",
        "readProfile",
        "revokeProfileAccess",
        "viewPartialProfile",
        "revokeEhrAccess",
        "viewEHR",
        "grantEhrAccess",
        "queryEHR",
    ],
    "DV": ["vote", "qryParties", "seeResults"],
    "SCM": ["pushASN", "Ship", "Unload", "queryASN", "queryStock"],
    "DRM": ["create", "play", "queryRghts", "viewMetaData", "calcRevenue"],
}


def uniform_workload(chaincode: str, **chaincode_kwargs) -> WorkloadSpec:
    """The default uniform workload over a use-case chaincode's functions.

    ``closeElctn`` (DV) and ``initLedger`` are excluded from the mixes because
    they are one-shot administrative operations, matching the paper's setup
    where the world state is populated before the benchmark starts.
    """
    if chaincode == "genChain":
        mix = TransactionMix.uniform(list(_GENCHAIN_FUNCTIONS.values()))
        return _genchain_spec("genChain-uniform", mix, "uniform over genChain functions", **chaincode_kwargs)
    if chaincode not in _USE_CASE_FUNCTIONS:
        known = ", ".join(sorted(_USE_CASE_FUNCTIONS) + ["genChain"])
        raise WorkloadError(f"unknown chaincode {chaincode!r}; known chaincodes: {known}")
    mix = TransactionMix.uniform(_USE_CASE_FUNCTIONS[chaincode])
    return WorkloadSpec(
        name=f"{chaincode}-uniform",
        chaincode=chaincode,
        mix=mix,
        chaincode_kwargs=dict(chaincode_kwargs),
        description=f"uniform mix over the {chaincode} chaincode functions",
    )
