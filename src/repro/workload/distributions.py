"""Key-access distributions (paper Section 4.4 / 4.5, "Zipfian skew").

The keys accessed by the workloads follow a Zipfian distribution with a
configurable skew: skew 0 is a uniform access pattern, positive skews
concentrate accesses on a small set of hot keys, which is the main driver of
MVCC read conflicts in Figure 15.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, Protocol

from repro.errors import WorkloadError


class KeyDistribution(Protocol):
    """Anything that can pick an entity index out of a population."""

    def sample(self, rng: random.Random, population: int) -> int:  # pragma: no cover
        """Return an index in ``[0, population)``."""
        ...

    def sample_batch(
        self, rng: random.Random, population: int, count: int
    ) -> List[int]:  # pragma: no cover
        """Return ``count`` indexes, byte-identical to ``count`` ``sample`` calls."""
        ...


class UniformDistribution:
    """Uniform key access (Zipfian skew 0)."""

    skew = 0.0

    def sample(self, rng: random.Random, population: int) -> int:
        """Pick every key with equal probability."""
        if population <= 0:
            raise WorkloadError(f"population must be positive, got {population}")
        return rng.randrange(population)

    def sample_batch(self, rng: random.Random, population: int, count: int) -> List[int]:
        """Batched fast path: the exact draw sequence of ``count`` samples.

        Replays ``rng.randrange(population)`` with the method lookup hoisted
        out of the loop, so the underlying ``random.Random`` state after the
        batch equals the state after ``count`` individual calls.
        """
        if population <= 0:
            raise WorkloadError(f"population must be positive, got {population}")
        randrange = rng.randrange
        return [randrange(population) for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UniformDistribution()"


class ZipfianDistribution:
    """Zipfian key access with exponent ``skew``.

    Rank ``r`` (0-based) is accessed with probability proportional to
    ``1 / (r + 1) ** skew``.  The cumulative weights are cached per population
    size so repeated sampling over the same key space is O(log n).
    """

    def __init__(self, skew: float) -> None:
        if skew < 0:
            raise WorkloadError(f"Zipfian skew must be >= 0, got {skew}")
        self.skew = float(skew)
        self._cdf_cache: Dict[int, List[float]] = {}

    def _cdf(self, population: int) -> List[float]:
        if population not in self._cdf_cache:
            weights = [1.0 / float(rank + 1) ** self.skew for rank in range(population)]
            cdf: List[float] = []
            total = 0.0
            for weight in weights:
                total += weight
                cdf.append(total)
            self._cdf_cache[population] = cdf
        return self._cdf_cache[population]

    def sample(self, rng: random.Random, population: int) -> int:
        """Pick a key rank according to the Zipfian weights."""
        if population <= 0:
            raise WorkloadError(f"population must be positive, got {population}")
        if self.skew == 0.0:
            return rng.randrange(population)
        cdf = self._cdf(population)
        point = rng.random() * cdf[-1]
        return min(bisect.bisect_left(cdf, point), population - 1)

    def sample_batch(self, rng: random.Random, population: int, count: int) -> List[int]:
        """Batched fast path: byte-identical to ``count`` ``sample`` calls.

        One ``rng.random()`` per draw with the CDF, its total and the bisect
        hoisted out of the loop — the arithmetic per draw is exactly that of
        :meth:`sample`, so the drawn ranks and the RNG state match the
        per-call path bit for bit.
        """
        if population <= 0:
            raise WorkloadError(f"population must be positive, got {population}")
        if self.skew == 0.0:
            randrange = rng.randrange
            return [randrange(population) for _ in range(count)]
        cdf = self._cdf(population)
        total = cdf[-1]
        random_ = rng.random
        bisect_left = bisect.bisect_left
        last = population - 1
        return [min(bisect_left(cdf, random_() * total), last) for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfianDistribution(skew={self.skew})"


def make_distribution(skew: float) -> KeyDistribution:
    """Build the distribution for a given Zipfian skew (0 means uniform)."""
    if skew == 0:
        return UniformDistribution()
    return ZipfianDistribution(skew)
