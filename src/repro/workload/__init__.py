"""Workload generation: key distributions, transaction mixes and arrival processes.

The workload layer mirrors Section 4.4 of the paper: a workload is defined by a
transaction mix (which chaincode functions are invoked with which probability),
a key distribution (uniform or Zipfian with a configurable skew) and the
arrival process of the clients.
"""

from repro.workload.client import ArrivalProcess
from repro.workload.distributions import UniformDistribution, ZipfianDistribution, make_distribution
from repro.workload.generator import TransactionRequest, WorkloadGenerator
from repro.workload.spec import TransactionMix, WorkloadSpec
from repro.workload.workloads import (
    SYNTHETIC_WORKLOADS,
    delete_heavy,
    insert_heavy,
    range_heavy,
    read_heavy,
    read_update_uniform,
    synthetic_workload,
    uniform_workload,
    update_heavy,
)

__all__ = [
    "ArrivalProcess",
    "UniformDistribution",
    "ZipfianDistribution",
    "make_distribution",
    "TransactionRequest",
    "WorkloadGenerator",
    "TransactionMix",
    "WorkloadSpec",
    "SYNTHETIC_WORKLOADS",
    "read_heavy",
    "insert_heavy",
    "update_heavy",
    "delete_heavy",
    "range_heavy",
    "read_update_uniform",
    "synthetic_workload",
    "uniform_workload",
]
