"""Workload generator: turns a workload spec into a stream of invocations.

The generator draws chaincode functions according to the transaction mix and
asks the chaincode to sample realistic arguments, applying the configured key
distribution (Zipfian skew) to entity selection.  It corresponds to the
workload generator of paper Section 4.4, whose inputs are "the number of
transactions, the transaction distribution ... and the key distribution".
"""

from __future__ import annotations

import random
import sys
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Any, Dict, List, Optional, Tuple

from repro.chaincode.base import Chaincode
from repro.errors import WorkloadError
from repro.workload.distributions import KeyDistribution, UniformDistribution
from repro.workload.spec import TransactionMix


@dataclass(frozen=True)
class TransactionRequest:
    """One client invocation: the function, its arguments and a read-only flag.

    ``entity_index`` records the primary entity drawn for the request (the
    first index-chooser call of ``sample_args``), or ``None`` for functions
    that select no entity.  It is diagnostic metadata — e.g. for
    :meth:`repro.channels.topology.ChannelRouter.route_request` and shard
    assertions in tests — and does not influence execution.
    """

    function: str
    args: Tuple[Any, ...]
    read_only: bool
    entity_index: Optional[int] = None


class WorkloadGenerator:
    """Draws :class:`TransactionRequest` objects for a chaincode and mix.

    ``primary_distribution`` optionally replaces the key distribution for the
    *first* entity draw of each request only — the draw that selects the
    request's primary key (patient, voter, genChain key, ...).  Channel-aware
    key generation plugs in here: a sharded distribution restricts each
    channel's primary keys to its shard while secondary choices (record types,
    grantees, ...) keep the unrestricted base distribution.
    """

    def __init__(
        self,
        chaincode: Chaincode,
        mix: TransactionMix,
        rng: random.Random,
        key_distribution: Optional[KeyDistribution] = None,
        primary_distribution: Optional[KeyDistribution] = None,
    ) -> None:
        self.chaincode = chaincode
        self.mix = mix
        self.rng = rng
        self.key_distribution = key_distribution or UniformDistribution()
        self.primary_distribution = primary_distribution or self.key_distribution
        self._functions: List[str] = []
        self._weights: List[float] = []
        known = set(chaincode.functions())
        for function, weight in mix.weights:
            if function not in known:
                raise WorkloadError(
                    f"workload references function {function!r} which chaincode "
                    f"{chaincode.name!r} does not define"
                )
            if weight > 0:
                # Function names travel on every Transaction and are compared
                # and hashed along the whole pipeline; intern them once.
                self._functions.append(sys.intern(function))
                self._weights.append(weight)
        if not self._functions:
            raise WorkloadError("the transaction mix assigns zero weight to every function")
        # Precomputed state of the per-request function draw: replicates
        # ``rng.choices(functions, weights=weights, k=1)`` exactly (one
        # ``random()`` draw, cumulative weights + bisect — see CPython's
        # ``random.choices``) without re-accumulating the weights every call.
        self._cum_weights: List[float] = list(accumulate(self._weights))
        self._weights_total: float = self._cum_weights[-1] + 0.0
        self._bisect_hi: int = len(self._functions) - 1
        self._read_only: Dict[str, bool] = {
            function: chaincode.is_read_only(function) for function in self._functions
        }
        self._first_index: Optional[int] = None

    def _chooser(self, population: int) -> int:
        """Entity-index chooser handed to ``sample_args`` (bound, reusable).

        The first draw of a request uses ``primary_distribution`` and is
        recorded as the request's ``entity_index``; every further draw uses
        the base ``key_distribution``.  Replaces the former per-request
        closure + recording list.
        """
        if self._first_index is None:
            index = self.primary_distribution.sample(self.rng, population)
            self._first_index = index
            return index
        return self.key_distribution.sample(self.rng, population)

    def next_request(self) -> TransactionRequest:
        """Draw the next invocation."""
        rng = self.rng
        function = self._functions[
            bisect(self._cum_weights, rng.random() * self._weights_total, 0, self._bisect_hi)
        ]
        self._first_index = None
        args = self.chaincode.sample_args(function, rng, self._chooser)
        return TransactionRequest(
            function=function,
            args=args,
            read_only=self._read_only[function],
            entity_index=self._first_index,
        )

    def generate(self, count: int) -> List[TransactionRequest]:
        """Draw ``count`` invocations (the paper's "number of transactions" input)."""
        if count < 0:
            raise WorkloadError(f"cannot generate a negative number of requests: {count}")
        return [self.next_request() for _ in range(count)]
