"""Workload generator: turns a workload spec into a stream of invocations.

The generator draws chaincode functions according to the transaction mix and
asks the chaincode to sample realistic arguments, applying the configured key
distribution (Zipfian skew) to entity selection.  It corresponds to the
workload generator of paper Section 4.4, whose inputs are "the number of
transactions, the transaction distribution ... and the key distribution".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.chaincode.base import Chaincode
from repro.errors import WorkloadError
from repro.workload.distributions import KeyDistribution, UniformDistribution
from repro.workload.spec import TransactionMix


@dataclass(frozen=True)
class TransactionRequest:
    """One client invocation: the function, its arguments and a read-only flag.

    ``entity_index`` records the primary entity drawn for the request (the
    first index-chooser call of ``sample_args``), or ``None`` for functions
    that select no entity.  It is diagnostic metadata — e.g. for
    :meth:`repro.channels.topology.ChannelRouter.route_request` and shard
    assertions in tests — and does not influence execution.
    """

    function: str
    args: Tuple[Any, ...]
    read_only: bool
    entity_index: Optional[int] = None


class WorkloadGenerator:
    """Draws :class:`TransactionRequest` objects for a chaincode and mix.

    ``primary_distribution`` optionally replaces the key distribution for the
    *first* entity draw of each request only — the draw that selects the
    request's primary key (patient, voter, genChain key, ...).  Channel-aware
    key generation plugs in here: a sharded distribution restricts each
    channel's primary keys to its shard while secondary choices (record types,
    grantees, ...) keep the unrestricted base distribution.
    """

    def __init__(
        self,
        chaincode: Chaincode,
        mix: TransactionMix,
        rng: random.Random,
        key_distribution: Optional[KeyDistribution] = None,
        primary_distribution: Optional[KeyDistribution] = None,
    ) -> None:
        self.chaincode = chaincode
        self.mix = mix
        self.rng = rng
        self.key_distribution = key_distribution or UniformDistribution()
        self.primary_distribution = primary_distribution or self.key_distribution
        self._functions: List[str] = []
        self._weights: List[float] = []
        known = set(chaincode.functions())
        for function, weight in mix.weights:
            if function not in known:
                raise WorkloadError(
                    f"workload references function {function!r} which chaincode "
                    f"{chaincode.name!r} does not define"
                )
            if weight > 0:
                self._functions.append(function)
                self._weights.append(weight)
        if not self._functions:
            raise WorkloadError("the transaction mix assigns zero weight to every function")

    def next_request(self) -> TransactionRequest:
        """Draw the next invocation."""
        function = self.rng.choices(self._functions, weights=self._weights, k=1)[0]
        recorded: List[int] = []

        def chooser(population: int) -> int:
            if not recorded:
                index = self.primary_distribution.sample(self.rng, population)
            else:
                index = self.key_distribution.sample(self.rng, population)
            recorded.append(index)
            return index

        args = self.chaincode.sample_args(function, self.rng, chooser)
        return TransactionRequest(
            function=function,
            args=args,
            read_only=self.chaincode.is_read_only(function),
            entity_index=recorded[0] if recorded else None,
        )

    def generate(self, count: int) -> List[TransactionRequest]:
        """Draw ``count`` invocations (the paper's "number of transactions" input)."""
        if count < 0:
            raise WorkloadError(f"cannot generate a negative number of requests: {count}")
        return [self.next_request() for _ in range(count)]
