"""Workload specifications: which functions are invoked, with which probability.

A :class:`TransactionMix` is a weighted set of chaincode functions; a
:class:`WorkloadSpec` couples a mix with the chaincode it targets (and the
constructor arguments of that chaincode) so experiments can be described
declaratively, exactly like the paper's "read-heavy", "update-heavy" and
use-case workloads.  A :class:`CrossChannelMix` additionally describes which
fraction of a multi-channel workload spans a second channel (see
:mod:`repro.channels`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import WorkloadError


@dataclass(frozen=True)
class TransactionMix:
    """A normalized weighted mix of chaincode function invocations."""

    weights: Tuple[Tuple[str, float], ...]

    @classmethod
    def from_dict(cls, weights: Dict[str, float]) -> "TransactionMix":
        """Build a mix from ``{function: weight}``; weights need not sum to 1."""
        if not weights:
            raise WorkloadError("a transaction mix needs at least one function")
        total = float(sum(weights.values()))
        if total <= 0:
            raise WorkloadError("transaction mix weights must sum to a positive value")
        for function, weight in weights.items():
            if weight < 0:
                raise WorkloadError(f"negative weight {weight} for function {function!r}")
        normalized = tuple(
            (function, weight / total) for function, weight in sorted(weights.items())
        )
        return cls(weights=normalized)

    @classmethod
    def uniform(cls, functions: List[str]) -> "TransactionMix":
        """Equal weight for every function."""
        return cls.from_dict({function: 1.0 for function in functions})

    def functions(self) -> List[str]:
        """Functions with non-zero probability."""
        return [function for function, weight in self.weights if weight > 0]

    def probability(self, function: str) -> float:
        """Probability of invoking ``function`` (0 when not in the mix)."""
        for name, weight in self.weights:
            if name == function:
                return weight
        return 0.0

    def as_dict(self) -> Dict[str, float]:
        """The mix as a plain dict."""
        return dict(self.weights)


@dataclass(frozen=True)
class CrossChannelMix:
    """The cross-channel component of a multi-channel workload.

    ``rate`` is the fraction of submitted-for-ordering transactions that span
    a second channel; ``partner_strategy`` selects that second channel —
    ``uniform`` picks any other channel with equal probability, ``neighbor``
    always picks the next channel (ring order), which concentrates the 2PC
    prepare traffic pairwise.
    """

    rate: float = 0.0
    partner_strategy: str = "uniform"

    #: The partner-selection strategies understood by the channel router.
    STRATEGIES = ("uniform", "neighbor")

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise WorkloadError(f"the cross-channel rate must be in [0, 1], got {self.rate}")
        if self.partner_strategy not in self.STRATEGIES:
            known = ", ".join(self.STRATEGIES)
            raise WorkloadError(
                f"unknown partner strategy {self.partner_strategy!r}; known: {known}"
            )

    @property
    def enabled(self) -> bool:
        """True when any cross-channel traffic is generated."""
        return self.rate > 0.0


@dataclass
class WorkloadSpec:
    """A named workload: a chaincode plus the mix of functions invoked on it."""

    name: str
    chaincode: str
    mix: TransactionMix
    chaincode_kwargs: Dict[str, Any] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("a workload spec needs a non-empty name")
        if not self.chaincode:
            raise WorkloadError("a workload spec needs a chaincode name")
