"""Command-line interface: run experiments and regenerate paper artefacts.

The CLI exposes the three things a practitioner typically wants to do with the
library without writing Python:

``python -m repro run``
    Run one experiment (variant, chaincode, block size, arrival rate, ...) and
    print the failure breakdown plus the Section 6 recommendations.

``python -m repro compare``
    Run the same workload on several Fabric variants and print a comparison
    table (a miniature Figure 26).

``python -m repro figure <id>``
    Regenerate one of the paper's tables/figures (e.g. ``fig7``, ``table4``)
    at a chosen scale and print the rows.

``python -m repro sweep``
    Run a grid of experiments (block sizes × arrival rates × variants × skews)
    through the parallel :class:`~repro.bench.runner.ExperimentRunner`, with
    ``--workers`` processes and a content-addressed result cache
    (``--cache-dir`` persists it across invocations, ``--no-cache`` disables
    it), and print one table row per grid cell plus the runner's statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.bench.experiments import EXPERIMENT_INDEX, PAPER_SCALE, QUICK_SCALE, STANDARD_SCALE
from repro.bench.harness import ExperimentConfig, run_experiment
from repro.bench.reporting import format_table
from repro.bench.runner import SWEEP_HEADERS, ExperimentRunner, ResultCache, SweepPlan
from repro.chaincode import CHAINCODE_REGISTRY
from repro.core.recommendations import RecommendationEngine
from repro.errors import ConfigurationError, ReproError
from repro.fabric.variant import available_variants
from repro.network.config import CLUSTER_PRESETS, NetworkConfig
from repro.workload.workloads import uniform_workload

_SCALES = {"quick": QUICK_SCALE, "standard": STANDARD_SCALE, "paper": PAPER_SCALE}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Why Do My Blockchain Transactions Fail?' (SIGMOD 2021)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one experiment and explain the failures")
    _add_experiment_arguments(run_parser)

    compare_parser = subparsers.add_parser(
        "compare", help="compare Fabric variants on the same workload"
    )
    _add_experiment_arguments(compare_parser)
    compare_parser.add_argument(
        "--variants",
        nargs="+",
        default=["fabric-1.4", "fabric++", "streamchain", "fabricsharp"],
        help="variants to compare",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a grid of experiments through the parallel runner"
    )
    _add_experiment_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--variants",
        nargs="*",
        choices=available_variants(),
        default=None,
        help="sweep over these Fabric variants (default: just --variant)",
    )
    sweep_parser.add_argument(
        "--block-sizes",
        nargs="*",
        type=int,
        default=None,
        help="sweep over these block sizes (default: just --block-size)",
    )
    sweep_parser.add_argument(
        "--rates",
        nargs="*",
        type=float,
        default=None,
        help="sweep over these arrival rates in tps (default: just --rate)",
    )
    sweep_parser.add_argument(
        "--skews",
        nargs="*",
        type=float,
        default=None,
        help="sweep over these Zipfian skews (default: just --skew)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for the grid (default 1)"
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist cached results in this directory (reused by later sweeps)",
    )

    figure_parser = subparsers.add_parser("figure", help="regenerate a paper table or figure")
    figure_parser.add_argument(
        "artefact", choices=sorted(EXPERIMENT_INDEX), help="artefact id, e.g. fig7 or table4"
    )
    figure_parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="quick", help="experiment scale"
    )
    return parser


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--variant", default="fabric-1.4", choices=available_variants())
    parser.add_argument("--chaincode", default="EHR", choices=sorted(CHAINCODE_REGISTRY))
    parser.add_argument("--cluster", default="C1", choices=sorted(CLUSTER_PRESETS))
    parser.add_argument("--database", default="couchdb", choices=["couchdb", "leveldb"])
    parser.add_argument("--block-size", type=int, default=100)
    parser.add_argument("--policy", default="P0", choices=["P0", "P1", "P2", "P3"])
    parser.add_argument("--rate", type=float, default=100.0, help="arrival rate in tps")
    parser.add_argument("--duration", type=float, default=15.0, help="simulated seconds")
    parser.add_argument("--skew", type=float, default=1.0, help="Zipfian key skew")
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)


def _experiment_config(args: argparse.Namespace, variant: Optional[str] = None) -> ExperimentConfig:
    return ExperimentConfig(
        variant=variant or args.variant,
        workload=uniform_workload(args.chaincode),
        network=NetworkConfig(
            cluster=args.cluster,
            database=args.database,
            block_size=args.block_size,
            endorsement_policy=args.policy,
        ),
        arrival_rate=args.rate,
        duration=args.duration,
        zipf_skew=args.skew,
        repetitions=args.repetitions,
        seed=args.seed,
    )


def _command_run(args: argparse.Namespace) -> int:
    result = run_experiment(_experiment_config(args))
    analysis = result.analyses[0]
    report = analysis.failure_report
    rows = [
        ("submitted transactions", analysis.metrics.submitted_transactions),
        ("committed transactions", analysis.metrics.committed_transactions),
        ("average latency (s)", analysis.metrics.average_latency),
        ("committed throughput (tps)", analysis.metrics.committed_throughput),
        ("total failures (%)", report.total_failure_pct),
        ("endorsement policy failures (%)", report.endorsement_pct),
        ("intra-block MVCC conflicts (%)", report.intra_block_mvcc_pct),
        ("inter-block MVCC conflicts (%)", report.inter_block_mvcc_pct),
        ("phantom read conflicts (%)", report.phantom_pct),
    ]
    print(format_table(("metric", "value"), rows, title="Experiment result"))
    recommendations = RecommendationEngine().recommend(analysis)
    if recommendations:
        print("\nRecommendations (paper Section 6):")
        for recommendation in recommendations:
            print(f"  - {recommendation.title} [{recommendation.paper_section}]")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    rows = []
    for variant in args.variants:
        result = run_experiment(_experiment_config(args, variant=variant))
        rows.append(
            (
                variant,
                result.average_latency,
                result.endorsement_pct,
                result.mvcc_pct,
                result.failure_pct,
                result.committed_throughput,
            )
        )
    print(
        format_table(
            (
                "variant",
                "latency_s",
                "endorsement_pct",
                "mvcc_pct",
                "failures_pct",
                "committed_tps",
            ),
            rows,
            title=f"Variant comparison ({args.chaincode}, {args.rate:.0f} tps, {args.cluster})",
        )
    )
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise ConfigurationError(f"--workers must be >= 1, got {args.workers}")
    plan = SweepPlan(
        base=_experiment_config(args),
        variants=args.variants,
        block_sizes=args.block_sizes,
        arrival_rates=args.rates,
        zipf_skews=args.skews,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = ExperimentRunner(workers=args.workers, cache=cache)
    outcome = runner.run_sweep(plan)
    title = (
        f"Sweep: {len(outcome.cells)} cell(s) x {args.repetitions} repetition(s) "
        f"({args.chaincode}, {args.cluster})"
    )
    print(format_table(SWEEP_HEADERS, outcome.rows(), title=title))
    print(f"\n{outcome.stats.describe()}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    experiment = EXPERIMENT_INDEX[args.artefact]
    report = experiment(_SCALES[args.scale])
    print(format_table(report.headers, report.rows, title=report.title))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "figure":
            return _command_figure(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
