"""Command-line interface: run experiments and regenerate paper artefacts.

The CLI exposes the three things a practitioner typically wants to do with the
library without writing Python:

``python -m repro run``
    Run one experiment (variant, chaincode, block size, arrival rate, ...) and
    print the failure breakdown plus the Section 6 recommendations.

``python -m repro compare``
    Run the same workload on several Fabric variants and print a comparison
    table (a miniature Figure 26).

``python -m repro figure <id>``
    Regenerate one of the paper's tables/figures (e.g. ``fig7``, ``table4``)
    at a chosen scale and print the rows.

``python -m repro sweep``
    Run a grid of experiments (block sizes × arrival rates × variants × skews)
    through the parallel :class:`~repro.bench.runner.ExperimentRunner`, with
    ``--workers`` processes and a content-addressed result cache
    (``--cache-dir`` persists it across invocations, ``--no-cache`` disables
    it), and print one table row per grid cell plus the runner's statistics.

``python -m repro trace summary <file>``
    Analyze a Chrome trace written by ``run``/``sweep --trace-out``: per-stage
    critical-path attribution of the committed transactions' latency.

``python -m repro check <file>``
    Re-check an exported committed history (``run --check-isolation
    --history-out FILE``) through the streaming isolation checker: per-channel
    serializability/snapshot-isolation verdicts with anomaly witnesses.  Exits
    0 when the history certifies at ``--level``, 1 when it is refuted.

``run`` and ``sweep`` additionally accept ``--trace-out FILE`` (Chrome
trace-event JSON, loadable in Perfetto or ``chrome://tracing``) and
``--metrics-out FILE`` (registry summary + sampled sim-time series + fault
markers); exporting never changes results — observability is excluded from
experiment cell identity (sweeps bypass the result cache when exporting, since
cached results carry no trace data).  ``run`` and ``sweep`` also accept
``--check-isolation`` (certify every channel's committed history online; see
:mod:`repro.checker`) and ``run`` accepts ``--history-out FILE`` (export the
committed history for ``repro check``; implies ``--check-isolation``) — like
observability, checking never changes results or cell identity.

Every experiment command accepts the multi-channel flags ``--channels``,
``--placement`` and ``--cross-channel-rate`` (see :mod:`repro.channels`), the
client-retry flags ``--retry-policy``, ``--max-retries``, ``--retry-backoff``
and ``--retry-rate-cap`` (see :mod:`repro.lifecycle.retry`), a ``--fault-spec``
chaos profile (JSON object or inline DSL such as
``peer-crash:rate=0.05,downtime=2;orderer-outage:start=5,duration=3`` — see
:mod:`repro.faults`) and a ``--json`` flag that replaces the text tables with
one machine-readable JSON document (configuration, failure breakdown,
per-channel records, runner statistics).  ``repro --version`` prints the
library version.  Unknown names — variant, chaincode, cluster, figure id,
retry policy, fault type — are rejected with the list of valid choices and
exit code 2.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Callable, List, Optional, Sequence

from repro import __version__
from repro.bench.experiments import EXPERIMENT_INDEX, PAPER_SCALE, QUICK_SCALE, STANDARD_SCALE
from repro.bench.harness import ExperimentConfig, ExperimentResult, run_experiment
from repro.bench.reporting import format_table
from repro.bench.runner import SWEEP_HEADERS, ExperimentRunner, ResultCache, SweepPlan
from repro.chaincode import CHAINCODE_REGISTRY
from repro.checker.checker import (
    LEVEL_SERIALIZABLE,
    LEVEL_SNAPSHOT_ISOLATION,
    CheckerConfig,
    IsolationReport,
)
from repro.checker.history import check_history, write_history
from repro.core.analyzer import ExperimentAnalysis
from repro.core.recommendations import RecommendationEngine
from repro.errors import ConfigurationError, ReproError
from repro.fabric.variant import available_variants
from repro.faults import FaultConfig, fault_config_summary, parse_fault_spec
from repro.lifecycle.retry import RetryConfig, available_retry_policies
from repro.network.config import CLUSTER_PRESETS, PLACEMENT_POLICIES, NetworkConfig
from repro.sim.shard import ExecutionConfig
from repro.observability import (
    ObservabilityConfig,
    critical_path_from_trace,
    critical_path_report,
    format_report,
    load_trace,
    write_chrome_trace,
    write_metrics,
)

from repro.workload.workloads import uniform_workload

_SCALES = {"quick": QUICK_SCALE, "standard": STANDARD_SCALE, "paper": PAPER_SCALE}


def _choice(kind: str, choices: Sequence[str]) -> Callable[[str], str]:
    """An argparse ``type`` that rejects unknown values with the valid names.

    argparse turns the raised :class:`argparse.ArgumentTypeError` into an
    error message plus exit code 2, so ``repro run --variant besu`` prints the
    known variants instead of failing with a bare error.
    """

    valid = sorted(choices)

    def parse(value: str) -> str:
        if value not in valid:
            names = ", ".join(valid)
            raise argparse.ArgumentTypeError(f"unknown {kind} {value!r}; valid choices: {names}")
        return value

    parse.__name__ = kind  # nicer argparse usage strings
    return parse


def _finite_float(kind: str) -> Callable[[str], float]:
    """An argparse ``type`` for floats that must be finite.

    ``float()`` happily parses ``nan`` and ``inf``, and a NaN duration or
    rate used to slip all the way into the simulator (``delay < 0`` is False
    for NaN) before dying deep in the engine.  Reject it at the CLI boundary
    with exit code 2 and a message naming the option instead.
    """

    def parse(value: str) -> float:
        try:
            number = float(value)
        except ValueError as error:
            raise argparse.ArgumentTypeError(f"{kind} must be a number, got {value!r}") from error
        if not math.isfinite(number):
            raise argparse.ArgumentTypeError(f"{kind} must be a finite number, got {value!r}")
        return number

    parse.__name__ = kind
    return parse


def _shard_workers(value: str) -> int:
    """argparse ``type`` for ``--shard-workers``.

    Valid values: ``0`` (size the worker pool automatically from the process
    budget), ``1`` (the default shared-clock execution) or a positive worker
    cap.  Anything else — negatives, floats, non-numbers — exits with code 2
    and a message listing the valid values, matching the other options.
    """
    valid = "valid values: 0 (auto), 1 (shared clock) or a positive worker cap"
    try:
        workers = int(value)
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"shard workers must be an integer, got {value!r}; {valid}"
        ) from error
    if workers < 0:
        raise argparse.ArgumentTypeError(
            f"shard workers must be >= 0, got {workers}; {valid}"
        )
    return workers


def _fault_spec(value: str) -> FaultConfig:
    """argparse ``type`` for ``--fault-spec``: JSON or the inline fault DSL.

    Parse errors (malformed JSON, unknown fault types — the latter listing
    the valid kinds) surface as exit code 2, matching how unknown variant and
    chaincode names are rejected.
    """
    try:
        return parse_fault_spec(value)
    except ConfigurationError as error:
        raise argparse.ArgumentTypeError(str(error)) from error


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Why Do My Blockchain Transactions Fail?' (SIGMOD 2021)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one experiment and explain the failures")
    _add_experiment_arguments(run_parser)
    _add_observability_arguments(run_parser)
    _add_checker_arguments(run_parser, history_out=True)

    compare_parser = subparsers.add_parser(
        "compare", help="compare Fabric variants on the same workload"
    )
    _add_experiment_arguments(compare_parser)
    compare_parser.add_argument(
        "--variants",
        nargs="+",
        type=_choice("variant", available_variants()),
        default=["fabric-1.4", "fabric++", "streamchain", "fabricsharp"],
        help="variants to compare",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a grid of experiments through the parallel runner"
    )
    _add_experiment_arguments(sweep_parser)
    _add_observability_arguments(sweep_parser)
    _add_checker_arguments(sweep_parser, history_out=False)
    sweep_parser.add_argument(
        "--variants",
        nargs="*",
        type=_choice("variant", available_variants()),
        default=None,
        help="sweep over these Fabric variants (default: just --variant)",
    )
    sweep_parser.add_argument(
        "--block-sizes",
        nargs="*",
        type=int,
        default=None,
        help="sweep over these block sizes (default: just --block-size)",
    )
    sweep_parser.add_argument(
        "--rates",
        nargs="*",
        type=float,
        default=None,
        help="sweep over these arrival rates in tps (default: just --rate)",
    )
    sweep_parser.add_argument(
        "--skews",
        nargs="*",
        type=float,
        default=None,
        help="sweep over these Zipfian skews (default: just --skew)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for the grid (default 1)"
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist cached results in this directory (reused by later sweeps)",
    )

    trace_parser = subparsers.add_parser("trace", help="inspect exported trace files")
    trace_subparsers = trace_parser.add_subparsers(dest="trace_command", required=True)
    summary_parser = trace_subparsers.add_parser(
        "summary", help="critical-path attribution of an exported Chrome trace"
    )
    summary_parser.add_argument("file", help="trace file written by run/sweep --trace-out")
    summary_parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as a machine-readable JSON document",
    )

    check_parser = subparsers.add_parser(
        "check", help="re-check an exported committed history for isolation anomalies"
    )
    check_parser.add_argument(
        "file", help="history file written by run --check-isolation --history-out"
    )
    check_parser.add_argument(
        "--level",
        default=LEVEL_SERIALIZABLE,
        type=_choice("isolation level", (LEVEL_SERIALIZABLE, LEVEL_SNAPSHOT_ISOLATION)),
        help="isolation level the history must certify at (default: serializable)",
    )
    check_parser.add_argument(
        "--witness-limit",
        type=int,
        default=4,
        help="anomaly witnesses to retain per channel (default 4)",
    )
    check_parser.add_argument(
        "--json",
        action="store_true",
        help="print the report as a machine-readable JSON document",
    )

    figure_parser = subparsers.add_parser("figure", help="regenerate a paper table or figure")
    figure_parser.add_argument(
        "artefact",
        type=_choice("figure id", sorted(EXPERIMENT_INDEX)),
        help="artefact id, e.g. fig7 or table4",
    )
    figure_parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="quick", help="experiment scale"
    )
    return parser


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--variant", default="fabric-1.4", type=_choice("variant", available_variants())
    )
    parser.add_argument(
        "--chaincode", default="EHR", type=_choice("chaincode", sorted(CHAINCODE_REGISTRY))
    )
    parser.add_argument(
        "--cluster", default="C1", type=_choice("cluster", sorted(CLUSTER_PRESETS))
    )
    parser.add_argument("--database", default="couchdb", choices=["couchdb", "leveldb"])
    parser.add_argument("--block-size", type=int, default=100)
    parser.add_argument("--policy", default="P0", choices=["P0", "P1", "P2", "P3"])
    parser.add_argument(
        "--rate", type=_finite_float("rate"), default=100.0, help="arrival rate in tps"
    )
    parser.add_argument(
        "--duration", type=_finite_float("duration"), default=15.0, help="simulated seconds"
    )
    parser.add_argument("--skew", type=float, default=1.0, help="Zipfian key skew")
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--channels", type=int, default=1, help="shard the network into this many channels"
    )
    parser.add_argument(
        "--placement",
        default="hash",
        type=_choice("placement policy", PLACEMENT_POLICIES),
        help="key placement across channels: hash, range or hot",
    )
    parser.add_argument(
        "--cross-channel-rate",
        type=float,
        default=0.0,
        help="fraction of transactions spanning a second channel (needs --channels >= 2)",
    )
    parser.add_argument(
        "--shard-workers",
        type=_shard_workers,
        default=1,
        help=(
            "worker processes for independent channel shards: 0 sizes the pool "
            "automatically, 1 (default) keeps the shared simulation clock, N >= 2 "
            "caps the pool (needs --channels >= 2; bit-identical results either way)"
        ),
    )
    parser.add_argument(
        "--retry-policy",
        default="none",
        type=_choice("retry policy", available_retry_policies()),
        help="client reaction to failed transactions: none, immediate, fixed or jittered",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="resubmission attempts per failed transaction (with --retry-policy)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        help="base backoff delay in seconds for the fixed and jittered policies",
    )
    parser.add_argument(
        "--retry-max-backoff",
        type=float,
        default=2.0,
        help="upper bound in seconds on any single backoff delay",
    )
    parser.add_argument(
        "--retry-rate-cap",
        type=float,
        default=None,
        help="deployment-wide resubmission rate cap in 1/s (default: uncapped)",
    )
    parser.add_argument(
        "--fault-spec",
        type=_fault_spec,
        default=None,
        metavar="SPEC",
        help=(
            "chaos profile as JSON or inline DSL, e.g. "
            "'peer-crash:rate=0.05,downtime=2;orderer-outage:start=5,duration=3' "
            "(kinds: peer-crash, endorser-slowdown, orderer-outage, partition, "
            "endorsement-loss, endorsement-timeout)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print one machine-readable JSON document instead of text tables",
    )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON (Perfetto-loadable) of the run",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the metrics registry summary and sampled sim-time series as JSON",
    )
    parser.add_argument(
        "--sample-interval",
        type=_finite_float("sample interval"),
        default=0.25,
        help="sim-time sampling interval in seconds for --metrics-out (default 0.25)",
    )


def _add_checker_arguments(parser: argparse.ArgumentParser, history_out: bool) -> None:
    parser.add_argument(
        "--check-isolation",
        action="store_true",
        help=(
            "certify every channel's committed history online (serializability "
            "and snapshot isolation, with anomaly witnesses on refutation)"
        ),
    )
    if history_out:
        parser.add_argument(
            "--history-out",
            default=None,
            metavar="FILE",
            help=(
                "write the committed history as JSON for 'repro check' "
                "(implies --check-isolation)"
            ),
        )


def _ensure_writable(path: str, option: str) -> None:
    """Reject unwritable export targets before spending time on the run."""
    if os.path.isdir(path):
        raise ConfigurationError(f"{option} target {path!r} is a directory")
    if os.path.exists(path):
        if not os.access(path, os.W_OK):
            raise ConfigurationError(f"{option} target {path!r} is not writable")
        return
    parent = os.path.dirname(path) or "."
    if not os.path.isdir(parent):
        raise ConfigurationError(f"{option} target directory {parent!r} does not exist")
    if not os.access(parent, os.W_OK):
        raise ConfigurationError(f"{option} target directory {parent!r} is not writable")


def _observability_config(args: argparse.Namespace) -> ObservabilityConfig:
    """The observability config requested by --trace-out/--metrics-out."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out is not None:
        _ensure_writable(trace_out, "--trace-out")
    if metrics_out is not None:
        _ensure_writable(metrics_out, "--metrics-out")
    return ObservabilityConfig(
        trace=trace_out is not None,
        metrics=metrics_out is not None,
        sample_interval=getattr(args, "sample_interval", 0.25),
    )


def _checker_config(args: argparse.Namespace) -> CheckerConfig:
    """The checker config requested by --check-isolation/--history-out."""
    history_out = getattr(args, "history_out", None)
    if history_out is not None:
        _ensure_writable(history_out, "--history-out")
    return CheckerConfig(
        enabled=getattr(args, "check_isolation", False) or history_out is not None
    )


def _experiment_config(args: argparse.Namespace, variant: Optional[str] = None) -> ExperimentConfig:
    return ExperimentConfig(
        variant=variant or args.variant,
        workload=uniform_workload(args.chaincode),
        network=NetworkConfig(
            cluster=args.cluster,
            database=args.database,
            block_size=args.block_size,
            endorsement_policy=args.policy,
            channels=args.channels,
            placement=args.placement,
            cross_channel_rate=args.cross_channel_rate,
            execution=ExecutionConfig(shard_workers=getattr(args, "shard_workers", 1)),
            retry=RetryConfig(
                policy=args.retry_policy,
                max_retries=args.max_retries,
                backoff=args.retry_backoff,
                max_backoff=max(args.retry_max_backoff, args.retry_backoff),
                rate_cap=args.retry_rate_cap,
            ),
            faults=args.fault_spec if args.fault_spec is not None else FaultConfig(),
            observability=_observability_config(args),
            checker=_checker_config(args),
        ),
        arrival_rate=args.rate,
        duration=args.duration,
        zipf_skew=args.skew,
        repetitions=args.repetitions,
        seed=args.seed,
    )


# --------------------------------------------------------------------- JSON
def _config_summary(config: ExperimentConfig) -> dict:
    """The experiment configuration as JSON-serializable data."""
    network = config.network
    return {
        "variant": config.variant,
        "chaincode": config.workload.chaincode,
        "workload": config.workload.name,
        "cluster": network.cluster,
        "database": str(getattr(network.database, "value", network.database)),
        "block_size": network.block_size,
        "endorsement_policy": network.endorsement_policy,
        "channels": network.channels,
        "placement": network.placement,
        "cross_channel_rate": network.cross_channel_rate,
        "shard_workers": network.execution.shard_workers,
        "retry_policy": network.retry.policy,
        "max_retries": network.retry.max_retries,
        "retry_backoff": network.retry.backoff,
        "retry_rate_cap": network.retry.rate_cap,
        "faults": fault_config_summary(network.faults) if network.faults.enabled else None,
        "arrival_rate": config.arrival_rate,
        "duration": config.duration,
        "zipf_skew": config.zipf_skew,
        "repetitions": config.repetitions,
        "seed": config.seed,
    }


def _analysis_summary(analysis: ExperimentAnalysis) -> dict:
    """One analysis (metrics + failure breakdown + per-channel records)."""
    metrics = analysis.metrics
    summary = {
        "submitted_transactions": metrics.submitted_transactions,
        "committed_transactions": metrics.committed_transactions,
        "average_latency_s": metrics.average_latency,
        "committed_throughput_tps": metrics.committed_throughput,
        "blocks": metrics.blocks,
        "orderer_utilization": metrics.orderer_utilization,
        "failures": analysis.failure_report.as_dict(),
        "client_effective_failure_pct": metrics.client_effective_failure_pct,
        "goodput_tps": metrics.goodput,
        "resubmissions": metrics.resubmissions,
        "retry_amplification": metrics.retry_amplification,
        "lifecycle_events": dict(analysis.record.lifecycle_counts),
        "execution": analysis.record.execution,
        "shard_count": analysis.record.shard_count,
        "fault_injections": dict(metrics.fault_injections),
        "latency_quantiles_s": dict(metrics.latency_quantiles),
        "stage_latency_s": {
            stage: dict(row) for stage, row in metrics.stage_latency.items()
        },
    }
    if analysis.record.isolation is not None:
        summary["isolation"] = analysis.record.isolation.summary()
    if analysis.channel_analyses:
        summary["channels"] = [
            {
                "channel": channel.name,
                "submitted_transactions": channel.metrics.submitted_transactions,
                "committed_throughput_tps": channel.metrics.committed_throughput,
                "cross_channel_submitted": channel.cross_channel_submitted,
                "cross_channel_aborted": channel.cross_channel_aborted,
                "failures": channel.failure_report.as_dict(),
            }
            for channel in analysis.channel_analyses
        ]
    return summary


def _print_json(document: dict) -> None:
    print(json.dumps(document, indent=2, sort_keys=True))


# ----------------------------------------------------------------- commands
def _export_observability(args: argparse.Namespace, analysis: ExperimentAnalysis) -> List[str]:
    """Write the run's requested trace/metrics exports; returns notices."""
    data = analysis.record.observability
    if data is None:
        return []
    notices: List[str] = []
    if args.trace_out is not None:
        write_chrome_trace(args.trace_out, [data])
        notices.append(f"trace written to {args.trace_out}")
    if args.metrics_out is not None:
        write_metrics(args.metrics_out, data)
        notices.append(f"metrics written to {args.metrics_out}")
    return notices


def _command_run(args: argparse.Namespace) -> int:
    config = _experiment_config(args)
    result = run_experiment(config)
    analysis = result.analyses[0]
    # With repetitions > 1 every repetition is traced identically configured;
    # the exports cover the first repetition (the others differ only by seed).
    export_notices = _export_observability(args, analysis)
    if getattr(args, "history_out", None) is not None:
        write_history(args.history_out, analysis.record)
        export_notices.append(f"committed history written to {args.history_out}")
    report = analysis.failure_report
    recommendations = RecommendationEngine().recommend(analysis)
    if args.json:
        document = {
            "command": "run",
            "config": _config_summary(config),
            "result": _analysis_summary(analysis),
            "recommendations": [
                {
                    "identifier": recommendation.identifier,
                    "title": recommendation.title,
                    "paper_section": recommendation.paper_section,
                }
                for recommendation in recommendations
            ],
        }
        data = analysis.record.observability
        if data is not None and data.spans:
            document["critical_path"] = critical_path_report(data.spans)
        if export_notices:
            document["exports"] = {
                key: value
                for key, value in (
                    ("trace", args.trace_out),
                    ("metrics", args.metrics_out),
                )
                if value is not None
            }
        _print_json(document)
        return 0
    rows = [
        ("submitted transactions", analysis.metrics.submitted_transactions),
        ("committed transactions", analysis.metrics.committed_transactions),
        ("average latency (s)", analysis.metrics.average_latency),
        ("committed throughput (tps)", analysis.metrics.committed_throughput),
        ("total failures (%)", report.total_failure_pct),
        ("endorsement policy failures (%)", report.endorsement_pct),
        ("intra-block MVCC conflicts (%)", report.intra_block_mvcc_pct),
        ("inter-block MVCC conflicts (%)", report.inter_block_mvcc_pct),
        ("phantom read conflicts (%)", report.phantom_pct),
    ]
    if args.channels > 1:
        rows.append(("cross-channel aborts (%)", report.cross_channel_abort_pct))
    isolation = analysis.record.isolation
    if isolation is not None:
        rows.append(("isolation verdict", isolation.verdict))
        rows.append(("isolation anomalies", isolation.anomaly_count))
    if analysis.record.shard_count > 1:
        rows.append(
            ("execution", f"{analysis.record.execution} ({analysis.record.shard_count} shards)")
        )
    if config.network.faults.enabled:
        rows.extend(
            [
                ("endorsement timeouts (%)", report.endorsement_timeout_pct),
                ("orderer unavailable (%)", report.orderer_unavailable_pct),
                ("peer unavailable (%)", report.peer_unavailable_pct),
                (
                    "fault injections",
                    sum(
                        count
                        for kind, count in analysis.metrics.fault_injections.items()
                        if kind.endswith(("_crash", "_start"))
                    ),
                ),
            ]
        )
    if config.network.retry.enabled:
        rows.extend(
            [
                ("client-effective failures (%)", analysis.metrics.client_effective_failure_pct),
                ("goodput (requests/s)", analysis.metrics.goodput),
                ("resubmissions", analysis.metrics.resubmissions),
                ("retry amplification (x)", analysis.metrics.retry_amplification),
            ]
        )
    print(format_table(("metric", "value"), rows, title="Experiment result"))
    if analysis.channel_analyses:
        channel_rows = [
            (
                channel.name,
                channel.metrics.submitted_transactions,
                channel.metrics.committed_throughput,
                channel.failure_report.total_failure_pct,
                channel.cross_channel_submitted,
                channel.cross_channel_aborted,
            )
            for channel in analysis.channel_analyses
        ]
        print()
        print(
            format_table(
                ("channel", "submitted", "committed_tps", "failures_pct", "cross_sent", "cross_aborted"),
                channel_rows,
                title="Per-channel breakdown",
            )
        )
    if isolation is not None and not isolation.serializable:
        print("\nIsolation anomalies (first witnesses):")
        for channel in isolation.channels:
            for witness in channel.anomalies:
                print(f"  - [{witness.level}] {witness.description}")
    data = analysis.record.observability
    if data is not None and data.spans:
        print("\nCritical path (committed transactions):")
        print(format_report(critical_path_report(data.spans)))
    if recommendations:
        print("\nRecommendations (paper Section 6):")
        for recommendation in recommendations:
            print(f"  - {recommendation.title} [{recommendation.paper_section}]")
    for notice in export_notices:
        print(notice)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    results: List[ExperimentResult] = []
    configs: List[ExperimentConfig] = []
    for variant in args.variants:
        config = _experiment_config(args, variant=variant)
        configs.append(config)
        results.append(run_experiment(config))
    if args.json:
        _print_json(
            {
                "command": "compare",
                "config": _config_summary(configs[0]),
                "variants": [
                    {
                        "variant": variant,
                        "average_latency_s": result.average_latency,
                        "endorsement_pct": result.endorsement_pct,
                        "mvcc_pct": result.mvcc_pct,
                        "failures_pct": result.failure_pct,
                        "committed_throughput_tps": result.committed_throughput,
                        "failures": result.analyses[0].failure_report.as_dict(),
                    }
                    for variant, result in zip(args.variants, results)
                ],
            }
        )
        return 0
    rows = [
        (
            variant,
            result.average_latency,
            result.endorsement_pct,
            result.mvcc_pct,
            result.failure_pct,
            result.committed_throughput,
        )
        for variant, result in zip(args.variants, results)
    ]
    print(
        format_table(
            (
                "variant",
                "latency_s",
                "endorsement_pct",
                "mvcc_pct",
                "failures_pct",
                "committed_tps",
            ),
            rows,
            title=f"Variant comparison ({args.chaincode}, {args.rate:.0f} tps, {args.cluster})",
        )
    )
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise ConfigurationError(f"--workers must be >= 1, got {args.workers}")
    plan = SweepPlan(
        base=_experiment_config(args),
        variants=args.variants,
        block_sizes=args.block_sizes,
        arrival_rates=args.rates,
        zipf_skews=args.skews,
    )
    exporting = args.trace_out is not None or args.metrics_out is not None
    checking = getattr(args, "check_isolation", False)
    cache = None if args.no_cache or exporting or checking else ResultCache(args.cache_dir)
    if exporting and not args.no_cache:
        # Observability is excluded from cell identity, so cached results of
        # the same cells carry no trace data; run the cells fresh instead.
        print("note: result cache bypassed while exporting traces/metrics", file=sys.stderr)
    if checking and not args.no_cache and not exporting:
        # Same exclusion for the checker: cached results carry no verdicts.
        print("note: result cache bypassed while checking isolation", file=sys.stderr)
    runner = ExperimentRunner(workers=args.workers, cache=cache)
    outcome = runner.run_sweep(plan)
    if exporting:
        observed = [
            (
                f"{cell.variant}-bs{cell.block_size}-r{cell.arrival_rate:g}-z{cell.zipf_skew:g}",
                result.analyses[0].record.observability,
            )
            for cell, result in zip(outcome.cells, outcome.results)
        ]
        observed = [(name, data) for name, data in observed if data is not None]
        if args.trace_out is not None:
            write_chrome_trace(
                args.trace_out,
                [data for _, data in observed],
                names=[name for name, _ in observed],
            )
            print(f"trace written to {args.trace_out}", file=sys.stderr)
        if args.metrics_out is not None:
            _write_sweep_metrics(args.metrics_out, observed)
            print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.json:
        _print_json(
            {
                "command": "sweep",
                "config": _config_summary(plan.base),
                "cells": [
                    {
                        "variant": cell.variant,
                        "block_size": cell.block_size,
                        "arrival_rate": cell.arrival_rate,
                        "zipf_skew": cell.zipf_skew,
                        "failures_pct": result.failure_pct,
                        "endorsement_pct": result.endorsement_pct,
                        "mvcc_pct": result.mvcc_pct,
                        "average_latency_s": result.average_latency,
                        "committed_throughput_tps": result.committed_throughput,
                        "failures": result.analyses[0].failure_report.as_dict(),
                        **(
                            {"isolation": result.analyses[0].record.isolation.summary()}
                            if result.analyses[0].record.isolation is not None
                            else {}
                        ),
                    }
                    for cell, result in zip(outcome.cells, outcome.results)
                ],
                "runner_stats": {
                    "tasks_total": outcome.stats.tasks_total,
                    "tasks_run": outcome.stats.tasks_run,
                    "cache_hits": outcome.stats.cache_hits,
                    "cache_misses": outcome.stats.cache_misses,
                    "deduplicated": outcome.stats.deduplicated,
                    "workers": outcome.stats.workers,
                    "wall_clock_s": outcome.stats.wall_clock,
                },
            }
        )
        return 0
    title = (
        f"Sweep: {len(outcome.cells)} cell(s) x {args.repetitions} repetition(s) "
        f"({args.chaincode}, {args.cluster})"
    )
    print(format_table(SWEEP_HEADERS, outcome.rows(), title=title))
    if checking:
        verdict_rows = [
            (
                f"{cell.variant}-bs{cell.block_size}-r{cell.arrival_rate:g}-z{cell.zipf_skew:g}",
                result.analyses[0].record.isolation.verdict
                if result.analyses[0].record.isolation is not None
                else "n/a",
            )
            for cell, result in zip(outcome.cells, outcome.results)
        ]
        print()
        print(format_table(("cell", "isolation"), verdict_rows, title="Isolation verdicts"))
    print(f"\n{outcome.stats.describe()}")
    return 0


def _write_sweep_metrics(path: str, observed) -> None:
    """Write one metrics document per sweep cell, keyed by the cell label."""
    from repro.observability import dumps, metrics_document

    document = {"cells": [{"cell": name, **metrics_document(data)} for name, data in observed]}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(document))
        handle.write("\n")


def _command_trace(args: argparse.Namespace) -> int:
    try:
        document = load_trace(args.file)
    except FileNotFoundError as error:
        raise ConfigurationError(f"trace file {args.file!r} does not exist") from error
    except (ValueError, json.JSONDecodeError) as error:
        raise ConfigurationError(f"not a Chrome trace-event file: {error}") from error
    report = critical_path_from_trace(document)
    if args.json:
        _print_json({"command": "trace-summary", "file": args.file, **report})
        return 0
    print(format_report(report))
    return 0


def _command_check(args: argparse.Namespace) -> int:
    if args.witness_limit < 1:
        raise ConfigurationError(f"--witness-limit must be >= 1, got {args.witness_limit}")
    report: IsolationReport = check_history(args.file, witness_limit=args.witness_limit)
    certified = report.certifies(args.level)
    if args.json:
        _print_json(
            {
                "command": "check",
                "file": args.file,
                "level": args.level,
                "certified": certified,
                **report.summary(),
            }
        )
        return 0 if certified else 1
    rows = [
        (
            "aggregate" if channel.channel is None else f"channel-{channel.channel}",
            channel.verdict,
            channel.committed,
            channel.aborted,
            channel.serializable_violations,
            channel.si_violations,
            channel.dangling_reads,
        )
        for channel in report.channels
    ]
    print(
        format_table(
            ("channel", "verdict", "committed", "aborted", "ser_cycles", "si_cycles", "dangling"),
            rows,
            title=f"Isolation check: {args.file}",
        )
    )
    for channel in report.channels:
        for witness in channel.anomalies:
            print(f"  - [{witness.level}] {witness.description}")
    print(f"\n{report.verdict} (required: {args.level})")
    return 0 if certified else 1


def _command_figure(args: argparse.Namespace) -> int:
    experiment = EXPERIMENT_INDEX[args.artefact]
    report = experiment(_SCALES[args.scale])
    print(format_table(report.headers, report.rows, title=report.title))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "check":
            return _command_check(args)
        if args.command == "figure":
            return _command_figure(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
