"""Exception hierarchy for the Fabric failure-study reproduction.

All library-specific exceptions derive from :class:`ReproError` so that callers
can catch any library error with a single ``except`` clause while still being
able to distinguish configuration problems from runtime simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of the supported range."""


class ChaincodeError(ReproError):
    """A chaincode function failed during simulated execution."""


class KeyNotFoundError(ChaincodeError):
    """A chaincode read a key that does not exist in the world state."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key not found in world state: {key!r}")
        self.key = key


class UnknownFunctionError(ChaincodeError):
    """A transaction invoked a chaincode function that is not registered."""

    def __init__(self, chaincode: str, function: str) -> None:
        super().__init__(f"chaincode {chaincode!r} has no function {function!r}")
        self.chaincode = chaincode
        self.function = function


class EndorsementPolicyError(ReproError):
    """An endorsement policy expression is malformed or cannot be satisfied."""


class UnsupportedFeatureError(ReproError):
    """A Fabric variant was asked to run a feature it does not support.

    For example FabricSharp does not support range queries (Section 5.4 of the
    paper), so submitting a range-heavy workload to it raises this error.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent internal state."""


class LedgerError(ReproError):
    """The ledger was queried or appended to in an invalid way."""


class WorkloadError(ReproError):
    """A workload specification is invalid or cannot be generated."""


class AnalysisError(ReproError):
    """Ledger analysis or failure classification received inconsistent data."""
