"""FIFO service stations for modelling peers and the ordering service.

A :class:`ServiceStation` is a (possibly multi-server) FIFO queue: jobs
submitted while all servers are busy wait and are served in submission order.
This is the queueing abstraction behind every latency effect in the study —
validation backlog on peers at small block sizes, ordering backlog for
Streamchain at high arrival rates, endorsement backlog for range-heavy
CouchDB workloads, and so on.

Single-server stations model the strictly sequential parts of Fabric (block
validation/commit on a peer, consensus in the ordering service); multi-server
stations model work that overlaps in practice, such as endorsement requests
waiting on the external CouchDB database.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.stats import OnlineStats


class ServiceStation:
    """A FIFO queue with ``servers`` identical servers on a :class:`Simulator`.

    Because service is FIFO and non-preemptive, the station only needs to track
    when each server becomes free; ``submit`` assigns the job to the earliest
    available server and schedules the completion callback.
    """

    def __init__(self, sim: Simulator, name: str = "station", servers: int = 1) -> None:
        if servers < 1:
            raise SimulationError(f"a service station needs at least one server, got {servers}")
        self.sim = sim
        self.name = name
        self.servers = servers
        self._free_at = [0.0] * servers
        heapq.heapify(self._free_at)
        self.jobs_served = 0
        self.busy_time = 0.0
        self.waiting_time = OnlineStats()
        self.service_time = OnlineStats()

    def submit(
        self,
        service_time: float,
        callback: Callable[..., None] | None = None,
        *args: Any,
    ) -> float:
        """Enqueue a job with the given service time.

        ``callback(*args)`` is scheduled at the job's completion time.  Returns
        the completion time so callers can chain further delays onto it.
        """
        if service_time < 0:
            raise SimulationError(f"negative service time {service_time} on {self.name}")
        now = self.sim.now
        free_at = self._free_at
        if len(free_at) == 1:
            # Single-server stations (validation, consensus) skip the heap:
            # the lone slot is read and overwritten in place.
            start = max(now, free_at[0])
            completion = start + service_time
            free_at[0] = completion
        else:
            earliest_free = heapq.heappop(free_at)
            start = max(now, earliest_free)
            completion = start + service_time
            heapq.heappush(free_at, completion)
        self.jobs_served += 1
        self.busy_time += service_time
        self.waiting_time.add(start - now)
        self.service_time.add(service_time)
        if callback is not None:
            # Completion events are never cancelled, so the handle-free fast
            # path avoids one Event allocation per job.
            self.sim.post_at(completion, callback, *args)
        return completion

    @property
    def backlog(self) -> float:
        """Seconds until the earliest server becomes free (0 when idle)."""
        return max(0.0, min(self._free_at) - self.sim.now)

    def utilization(self, horizon: float) -> float:
        """Fraction of the station's total capacity used over ``horizon`` seconds."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / (horizon * self.servers))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceStation(name={self.name!r}, servers={self.servers}, "
            f"jobs={self.jobs_served}, backlog={self.backlog:.3f}s)"
        )
