"""Event-heap discrete-event simulation engine.

The engine is deliberately minimal: events are ``(time, sequence, callback)``
triples kept in a binary heap.  Components schedule callbacks at absolute or
relative virtual times; the :class:`Simulator` pops events in time order and
invokes them.  There is no wall-clock coupling — simulated seconds are just
floating point numbers — which is what makes sweeping hundreds of Fabric
configurations cheap.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback in the simulation.

    Events order by ``(time, sequence)`` so that events scheduled earlier in
    real (scheduling) order break ties deterministically.
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run(until=60.0)

    The simulator guarantees that callbacks run in non-decreasing time order and
    that two events scheduled for the same time run in scheduling order.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._sequence = 0
        self._processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Negative delays are rejected because they would violate causality.
        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time:.6f} before the current time "
                f"t={self._now:.6f}"
            )
        event = Event(time=time, sequence=self._sequence, callback=callback, args=args)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap is empty or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until`` at
        the end of the run even if the last event happened earlier, so that
        time-weighted statistics cover the whole horizon.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args)
                self._processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_empty(self) -> None:
        """Run until no events remain, regardless of how long that takes."""
        self.run(until=None)
