"""Calendar-queue discrete-event simulation engine.

Scheduled callbacks live in a two-level calendar queue: a near-term *wheel*
of time buckets covering one revolution ``[ring_start, ring_start +
256 * width)`` plus a far-term *overflow* heap for everything beyond that
horizon.  Scheduling into the wheel is an O(1) list append; a bucket is only
ordered (heapified) when the clock reaches it, and entries that land in an
already-drained bucket — or exactly at the current time — go straight into
the active bucket's heap.  The bucket width adapts: it doubles when a
revolution dispatches too few events and halves when buckets grow crowded,
so millisecond-spaced network hops and sparse far-future timers are both
O(1) amortized per event.

Queue entries are plain ``(time, sequence, callback, args, handle)`` tuples
ordered by the same ``(time, sequence)`` tie-break the original heapq engine
used: events run in non-decreasing time order and equal-time events run in
scheduling order, bit-identical to a single binary heap (the golden
lifecycle records pin this; :mod:`repro.sim.reference` keeps the original
engine as the differential-testing oracle).

:meth:`Simulator.post` / :meth:`Simulator.post_at` are the hot-path variants
that skip allocating a cancellation handle; :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` return an :class:`Event` that can be
cancelled.  Cancelled events are *evicted* — lazily when their entry is
popped, eagerly by a compaction pass once they outnumber the live events —
so :attr:`Simulator.pending_events` counts live events only and the queue
cannot grow without bound under retry/timeout cancellation storms.

There is no wall-clock coupling — simulated seconds are just floating point
numbers — which is what makes sweeping hundreds of Fabric configurations
cheap.  An opt-in profiler (:mod:`repro.sim.profile`) observes dispatch
batches; when detached it costs one predictable branch per batch.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.profile import EngineProfiler

_INF = math.inf

#: :class:`Event` handle states: queued, queued-but-cancelled (awaiting
#: eviction), and dispatched-or-evicted.
_LIVE, _CANCELLED, _DONE = 0, 1, 2

#: Buckets per wheel revolution.
_BUCKET_COUNT = 256
#: Initial bucket width in simulated seconds (network hops are milliseconds).
_INITIAL_WIDTH = 1.0 / 1024.0
#: Width clamps are exact powers of two so the bucket map can multiply by the
#: stored inverse width (cheaper than dividing) without changing a single
#: bucket assignment: scaling by an exact power of two is exact either way.
_MIN_WIDTH = 2.0**-30
_MAX_WIDTH = 2.0**40
#: A revolution dispatching fewer events than this doubles the bucket width;
#: one dispatching more than ``_DENSE_REVOLUTION`` halves it.  The dense bound
#: targets ~32 entries per bucket: binary-heap pops inside a bucket run at C
#: speed, while activating a bucket costs a Python-level refill, so larger
#: buckets win until heap depth starts to matter.
_SPARSE_REVOLUTION = _BUCKET_COUNT // 8
_DENSE_REVOLUTION = _BUCKET_COUNT * 32
#: Compact (evict every cancelled entry at once) only past this count *and*
#: only when cancelled entries outnumber live ones, which bounds the queue at
#: ``2 * live + _COMPACT_MIN_CANCELLED`` entries.
_COMPACT_MIN_CANCELLED = 512


class Event:
    """Cancellation handle of one scheduled callback.

    Events order by ``(time, sequence)`` so that events scheduled earlier in
    real (scheduling) order break ties deterministically; the handle records
    both for inspection.  Handles are only allocated by :meth:`Simulator.
    schedule` / :meth:`Simulator.schedule_at` — the ``post`` fast paths skip
    them entirely.
    """

    __slots__ = ("time", "sequence", "_sim", "_state")

    def __init__(self, time: float, sequence: int, sim: "Simulator") -> None:
        self.time = time
        self.sequence = sequence
        self._sim = sim
        self._state = _LIVE

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` marked the event for eviction."""
        return self._state == _CANCELLED

    def cancel(self) -> None:
        """Cancel the event so it never runs (no-op once dispatched).

        The entry is evicted from the queue: lazily when its turn comes, or
        eagerly by a compaction pass when cancelled entries outnumber live
        ones — either way :attr:`Simulator.pending_events` drops immediately.
        """
        if self._state == _LIVE:
            self._state = _CANCELLED
            self._sim._note_cancel()


class Simulator:
    """A deterministic discrete-event simulator with a virtual clock.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run(until=60.0)

    The simulator guarantees that callbacks run in non-decreasing time order
    and that two events scheduled for the same time run in scheduling order.
    """

    __slots__ = (
        "_now",
        "_sequence",
        "_processed",
        "_running",
        "_live",
        "_cancelled",
        "_compact_pending",
        "_ring",
        "_ring_pos",
        "_ring_start",
        "_near_count",
        "_current",
        "_overflow",
        "_width",
        "_inv_width",
        "_horizon",
        "_rev_mark",
        "_profiler",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._processed = 0
        self._running = False
        self._live = 0
        self._cancelled = 0
        self._compact_pending = False
        self._ring: list[list] = [[] for _ in range(_BUCKET_COUNT)]
        self._ring_pos = 0
        self._ring_start = 0.0
        self._near_count = 0
        self._current: list = []
        self._overflow: list = []
        self._width = _INITIAL_WIDTH
        self._inv_width = 1.0 / _INITIAL_WIDTH
        self._horizon = _BUCKET_COUNT * _INITIAL_WIDTH
        self._rev_mark = 0
        self._profiler: Optional["EngineProfiler"] = None

    # ------------------------------------------------------------- inspection
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of *live* events currently queued (cancelled ones excluded)."""
        return self._live

    @property
    def next_event_time(self) -> float:
        """Timestamp of the earliest queued entry (``inf`` when empty).

        A lower bound: a cancelled-but-not-yet-evicted entry may report an
        earlier time than the first live event.  That is exactly what the
        conservative epoch loop (:mod:`repro.channels.sharded`) needs to skip
        empty barrier windows — skipping too little is safe, skipping past a
        live event would not be.  With zero live events the queue *is* empty
        (whatever cancelled husks remain will never run), so the bound must
        be ``inf`` — a husk's finite timestamp would make an exhausted
        simulator look forever busy.
        """
        if not self._live:
            return _INF
        best = _INF
        if self._current:
            best = self._current[0][0]
        if self._near_count:
            ring = self._ring
            for index in range(self._ring_pos + 1, _BUCKET_COUNT):
                bucket = ring[index]
                if bucket:
                    earliest = min(entry[0] for entry in bucket)
                    if earliest < best:
                        best = earliest
                    break  # later buckets only hold later times
        if self._overflow and self._overflow[0][0] < best:
            best = self._overflow[0][0]
        return best

    def queue_stats(self) -> dict:
        """Internal queue occupancy, for tests and the engine profiler.

        ``queued_entries`` counts every entry physically retained (live plus
        cancelled-awaiting-eviction); the compaction bound guarantees it never
        exceeds ``2 * live + 512``.
        """
        return {
            "live": self._live,
            "cancelled": self._cancelled,
            "queued_entries": len(self._current) + self._near_count + len(self._overflow),
            "overflow": len(self._overflow),
            "bucket_width": self._width,
        }

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Negative delays are rejected because they would violate causality;
        NaN and infinite delays are rejected because they would silently
        corrupt the queue order.  Returns the :class:`Event` handle, which can
        be cancelled — use :meth:`post` when the handle is never needed.
        """
        if not 0.0 <= delay < _INF:
            self._reject_delay(delay)
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the absolute virtual time ``time``."""
        if not self._now <= time < _INF:
            self._reject_time(time)
        sequence = self._sequence
        self._sequence = sequence + 1
        handle = Event(time, sequence, self)
        entry = (time, sequence, callback, args, handle)
        if time < self._horizon:
            index = int((time - self._ring_start) * self._inv_width)
            if index >= _BUCKET_COUNT:  # float rounding at the horizon edge
                index = _BUCKET_COUNT - 1
            if index <= self._ring_pos:
                heappush(self._current, entry)
            else:
                self._ring[index].append(entry)
                self._near_count += 1
        else:
            heappush(self._overflow, entry)
        self._live += 1
        return handle

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Hot-path :meth:`schedule` without a cancellation handle.

        Identical ordering semantics (the same sequence counter is consumed),
        but no :class:`Event` is allocated — the event cannot be cancelled.
        The queue insert is inlined rather than delegated to :meth:`post_at`:
        this is the hottest call in the network model.
        """
        if not 0.0 <= delay < _INF:
            self._reject_delay(delay)
        time = self._now + delay
        if time == _INF:  # overflow of now + delay
            self._reject_time(time)
        sequence = self._sequence
        self._sequence = sequence + 1
        entry = (time, sequence, callback, args, None)
        if time < self._horizon:
            index = int((time - self._ring_start) * self._inv_width)
            if index >= _BUCKET_COUNT:
                index = _BUCKET_COUNT - 1
            if index <= self._ring_pos:
                heappush(self._current, entry)
            else:
                self._ring[index].append(entry)
                self._near_count += 1
        else:
            heappush(self._overflow, entry)
        self._live += 1

    def post_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Hot-path :meth:`schedule_at` without a cancellation handle."""
        if not self._now <= time < _INF:
            self._reject_time(time)
        sequence = self._sequence
        self._sequence = sequence + 1
        entry = (time, sequence, callback, args, None)
        if time < self._horizon:
            index = int((time - self._ring_start) * self._inv_width)
            if index >= _BUCKET_COUNT:
                index = _BUCKET_COUNT - 1
            if index <= self._ring_pos:
                heappush(self._current, entry)
            else:
                self._ring[index].append(entry)
                self._near_count += 1
        else:
            heappush(self._overflow, entry)
        self._live += 1

    def _reject_delay(self, delay: float) -> None:
        if not math.isfinite(delay):
            raise SimulationError(
                f"cannot schedule an event after a non-finite delay ({delay!r})"
            )
        raise SimulationError(f"cannot schedule an event {delay} seconds in the past")

    def _reject_time(self, time: float) -> None:
        if not math.isfinite(time):
            raise SimulationError(
                f"cannot schedule an event at the non-finite time t={time!r}"
            )
        raise SimulationError(
            f"cannot schedule an event at t={time:.6f} before the current time "
            f"t={self._now:.6f}"
        )

    # ------------------------------------------------------------ cancellation
    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled += 1
        if self._cancelled >= _COMPACT_MIN_CANCELLED and self._cancelled > self._live:
            # Mid-run, compaction must wait for a batch boundary: the dispatch
            # loop holds a reference to the active bucket's heap.
            if self._running:
                self._compact_pending = True
            else:
                self._compact()

    def _compact(self) -> None:
        """Evict every cancelled entry, rebuilding the queue structures.

        The active bucket and the overflow heap are rebuilt *in place*
        (slice assignment + heapify) so that the dispatch loop's reference to
        the active bucket stays valid across a deferred mid-run compaction.
        """

        def live_entries(entries: list) -> list:
            return [e for e in entries if e[4] is None or e[4]._state == _LIVE]

        current = self._current
        current[:] = live_entries(current)
        heapify(current)
        ring = self._ring
        near = 0
        for index in range(_BUCKET_COUNT):
            if ring[index]:
                ring[index] = bucket = live_entries(ring[index])
                near += len(bucket)
        self._near_count = near
        overflow = self._overflow
        overflow[:] = live_entries(overflow)
        heapify(overflow)
        self._cancelled = 0

    # ---------------------------------------------------------------- dispatch
    def _refill(self) -> bool:
        """Make the active bucket non-empty; False when the queue is drained."""
        ring = self._ring
        while True:
            if self._current:
                return True
            if self._near_count:
                pos = self._ring_pos + 1
                while pos < _BUCKET_COUNT:
                    bucket = ring[pos]
                    if bucket:
                        ring[pos] = []
                        self._near_count -= len(bucket)
                        heapify(bucket)
                        self._current = bucket
                        self._ring_pos = pos
                        return True
                    pos += 1
                self._ring_pos = _BUCKET_COUNT - 1
                continue  # stale near count cannot happen, but stay safe
            if not self._overflow:
                return False
            self._advance_revolution()

    def _advance_revolution(self) -> None:
        """Open the next wheel revolution at the earliest overflow event.

        Called with the wheel empty, which makes resizing the bucket width
        free: no queued entry has to be re-filed.  The new window starts at
        the overflow top, so runs of empty buckets are skipped outright.
        """
        dispatched = self._processed - self._rev_mark
        self._rev_mark = self._processed
        width = self._width
        if dispatched < _SPARSE_REVOLUTION and width < _MAX_WIDTH:
            width *= 2.0
        elif dispatched > _DENSE_REVOLUTION and width > _MIN_WIDTH:
            width *= 0.5
        self._width = width
        inv_width = 1.0 / width
        self._inv_width = inv_width
        overflow = self._overflow
        start = overflow[0][0]
        horizon = start + _BUCKET_COUNT * width
        self._ring_start = start
        self._horizon = horizon
        self._ring_pos = 0
        # Overflow pops arrive in ascending order, so plain appends keep the
        # active bucket a valid heap.
        current: list = []
        self._current = current
        ring = self._ring
        near = 0
        while overflow and overflow[0][0] < horizon:
            entry = heappop(overflow)
            handle = entry[4]
            if handle is not None and handle._state == _CANCELLED:
                self._cancelled -= 1
                continue
            index = int((entry[0] - start) * inv_width)
            if index <= 0:
                current.append(entry)
            else:
                if index >= _BUCKET_COUNT:  # float rounding at the horizon edge
                    index = _BUCKET_COUNT - 1
                ring[index].append(entry)
                near += 1
        self._near_count += near

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue is empty or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until`` at
        the end of the run even if the last event happened earlier, so that
        time-weighted statistics cover the whole horizon.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        if until is not None and until != until:  # NaN guard
            raise SimulationError("cannot run until a NaN time")
        self._running = True
        pop = heappop
        limit = _INF if until is None else until
        try:
            # Outer loop: one iteration per active-bucket drain.  The
            # per-event work all happens in the inner loop; termination,
            # refill and deferred compaction are only checked per bucket.
            # (Deferred compaction rebuilds the active bucket in place, so
            # the inner loop's ``cur`` reference would stay valid even if one
            # slipped in mid-bucket — it cannot, but cheap insurance.)
            while self._live:
                if self._compact_pending:
                    self._compact_pending = False
                    self._compact()
                if not self._current and not self._refill():
                    break  # defensive: only cancelled entries remained
                cur = self._current
                while cur:
                    entry = pop(cur)
                    handle = entry[4]
                    if handle is not None and handle._state == _CANCELLED:
                        self._cancelled -= 1
                        continue
                    time = entry[0]
                    if time > limit:
                        heappush(cur, entry)
                        cur = None  # signal the outer loop to stop
                        break
                    self._now = time
                    # Batched same-timestamp dispatch: every queued entry
                    # sharing this timestamp lives in the active bucket's
                    # heap (the bucket map sends equal times to equal
                    # buckets), so the whole batch drains without
                    # re-entering the refill path.
                    while True:
                        if handle is None:
                            self._live -= 1
                            self._processed += 1
                            entry[2](*entry[3])
                        elif handle._state == _LIVE:
                            handle._state = _DONE
                            self._live -= 1
                            self._processed += 1
                            entry[2](*entry[3])
                        else:
                            self._cancelled -= 1
                        if cur and cur[0][0] == time:
                            entry = pop(cur)
                            handle = entry[4]
                        else:
                            break
                    if self._profiler is not None:
                        self._profiler.on_batch(self, time)
                if cur is None:
                    break
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_empty(self) -> None:
        """Run until no events remain, regardless of how long that takes."""
        self.run(until=None)

    # ---------------------------------------------------------------- profiling
    @property
    def profiler_attached(self) -> bool:
        """True while a profiler observes this simulator (only one may)."""
        return self._profiler is not None

    def attach_profiler(self, profiler: "EngineProfiler") -> None:
        """Install ``profiler`` to observe dispatch batches (one at a time)."""
        if self._profiler is not None:
            raise SimulationError("a profiler is already attached to this simulator")
        self._profiler = profiler

    def detach_profiler(self) -> None:
        """Remove the attached profiler (no-op when none is attached)."""
        self._profiler = None
