"""Opt-in engine profiling: events/sec and queue-depth histograms.

The profiler observes the engine's dispatch loop at *batch* granularity (one
batch = all events sharing a timestamp).  It is strictly opt-in: a detached
simulator pays one ``is not None`` branch per batch and nothing else, so the
hot path stays hot.  Typical usage::

    profiler = EngineProfiler(sim)
    with profiler:
        sim.run_until_empty()
    report = profiler.report()
    print(report["events_per_sec"], report["depth_histogram"])

``depth_histogram`` maps power-of-two buckets of the live queue depth (the
key ``"2^k"`` covers depths in ``[2^(k-1), 2^k)``, with ``"0"`` for an empty
queue) to the number of batches observed at that depth — a cheap stand-in
for a full heap-depth timeline that still shows whether the queue stays
shallow or balloons.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class EngineProfiler:
    """Measures events/sec and queue-depth distribution of one simulator run.

    Use as a context manager around ``sim.run(...)``; the wall-clock window is
    the time spent inside the ``with`` block.  The profiler may be reused for
    several windows — counters accumulate across them.
    """

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._started: Optional[float] = None
        self._events_at_start = 0
        self.events = 0
        self.batches = 0
        self.wall_seconds = 0.0
        self.max_depth = 0
        self._depth_counts: Dict[int, int] = {}

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "EngineProfiler":
        self._sim.attach_profiler(self)
        self._events_at_start = self._sim.processed_events
        self._started = _time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = _time.perf_counter() - self._started if self._started is not None else 0.0
        self._started = None
        self.wall_seconds += elapsed
        self.events += self._sim.processed_events - self._events_at_start
        self._sim.detach_profiler()

    # -------------------------------------------------------------- observing
    def on_batch(self, sim: "Simulator", now: float) -> None:
        """Engine callback, invoked once per same-timestamp dispatch batch.

        Runs once per batch on the engine's dispatch loop, so it reads the
        engine's ``_live`` counter directly instead of going through the
        ``pending_events`` property — a profiled run should perturb the
        events/sec it measures as little as possible.
        """
        self.batches += 1
        depth = sim._live
        if depth > self.max_depth:
            self.max_depth = depth
        counts = self._depth_counts
        bucket = depth.bit_length()
        counts[bucket] = counts.get(bucket, 0) + 1

    # -------------------------------------------------------------- reporting
    @property
    def depth_histogram(self) -> Dict[str, int]:
        """Live-queue-depth histogram over batches, keyed ``"0"``/``"2^k"``."""
        return {
            "0" if bucket == 0 else f"2^{bucket}": count
            for bucket, count in sorted(self._depth_counts.items())
        }

    @property
    def events_per_sec(self) -> float:
        """Dispatched events per wall-clock second over the profiled windows."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events / self.wall_seconds

    def report(self) -> dict:
        """All collected metrics as one JSON-serialisable dictionary."""
        return {
            "events": self.events,
            "batches": self.batches,
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.events_per_sec,
            "events_per_batch": (self.events / self.batches) if self.batches else 0.0,
            "max_queue_depth": self.max_depth,
            "depth_histogram": self.depth_histogram,
        }
