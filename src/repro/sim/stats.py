"""Online statistics accumulators used by the simulator and the metrics layer."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


class OnlineStats:
    """Accumulates count / mean / variance / min / max without storing samples.

    Uses Welford's algorithm so the variance is numerically stable even for
    millions of latency samples.
    """

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far (0 for < 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        merged = OnlineStats()
        if self.count == 0:
            merged.count = other.count
            merged.mean = other.mean
            merged._m2 = other._m2
            merged.minimum = other.minimum
            merged.maximum = other.maximum
            return merged
        if other.count == 0:
            merged.count = self.count
            merged.mean = self.mean
            merged._m2 = self._m2
            merged.minimum = self.minimum
            merged.maximum = self.maximum
            return merged
        total = self.count + other.count
        delta = other.mean - self.mean
        merged.count = total
        merged.mean = self.mean + delta * other.count / total
        merged._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineStats(count={self.count}, mean={self.mean:.6f}, stdev={self.stdev:.6f})"


class TimeWeightedStats:
    """Time-weighted average of a piecewise-constant signal (e.g. queue length)."""

    def __init__(self, initial_time: float = 0.0, initial_value: float = 0.0) -> None:
        self._last_time = initial_time
        self._last_value = initial_value
        self._weighted_sum = 0.0
        self._duration = 0.0
        self.maximum = initial_value

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError("time must be non-decreasing for time-weighted stats")
        span = time - self._last_time
        self._weighted_sum += self._last_value * span
        self._duration += span
        self._last_time = time
        self._last_value = value
        if value > self.maximum:
            self.maximum = value

    def mean(self, until: float | None = None) -> float:
        """Time-weighted mean, optionally extending the last value to ``until``."""
        weighted = self._weighted_sum
        duration = self._duration
        if until is not None and until > self._last_time:
            weighted += self._last_value * (until - self._last_time)
            duration += until - self._last_time
        if duration <= 0:
            return self._last_value
        return weighted / duration


class P2Quantile:
    """Single-quantile estimator using the P² algorithm (Jain & Chlamtac 1985).

    Tracks one quantile of a stream in O(1) memory and O(1) time per sample —
    five markers whose heights approximate the quantile curve — without
    storing samples and, crucially for the simulation, without drawing from
    any RNG (a reservoir sketch would perturb the deterministic streams).
    The first five samples are kept exactly, so small runs report the same
    value as :func:`percentile`.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"quantile fraction must be in (0, 1), got {fraction}")
        self.fraction = fraction
        self.count = 0
        self._initial: List[float] = []
        self._q: List[float] = []  # marker heights
        self._n: List[float] = []  # marker positions (1-based)
        self._np: List[float] = []  # desired marker positions
        f = fraction
        self._dn = (0.0, f / 2.0, f, (1.0 + f) / 2.0, 1.0)

    def add(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        if self.count <= 5:
            self._initial.append(value)
            if self.count == 5:
                self._initial.sort()
                f = self.fraction
                self._q = list(self._initial)
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [1.0, 1.0 + 2.0 * f, 1.0 + 4.0 * f, 3.0 + 2.0 * f, 5.0]
            return
        q, n = self._q, self._n
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= q[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            n[index] += 1.0
        for index in range(5):
            self._np[index] += self._dn[index]
        for index in (1, 2, 3):
            drift = self._np[index] - n[index]
            if (drift >= 1.0 and n[index + 1] - n[index] > 1.0) or (
                drift <= -1.0 and n[index - 1] - n[index] < -1.0
            ):
                step = 1.0 if drift >= 0.0 else -1.0
                candidate = self._parabolic(index, step)
                if q[index - 1] < candidate < q[index + 1]:
                    q[index] = candidate
                else:
                    q[index] = self._linear(index, step)
                n[index] += step

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current estimate of the tracked quantile (``nan`` before any sample)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            return percentile(self._initial, self.fraction)
        return self._q[2]


#: The default quantiles the metrics layer reports.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


class QuantileSketch:
    """A bundle of :class:`P2Quantile` estimators (p50/p95/p99 by default).

    The constant-memory companion of :class:`OnlineStats`: where OnlineStats
    tracks mean and variance, the sketch tracks the latency tail — without
    storing the sample list, so it can run inside the metrics registry for
    arbitrarily long simulations.
    """

    def __init__(self, fractions: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not fractions:
            raise ValueError("a quantile sketch needs at least one fraction")
        self._estimators = {fraction: P2Quantile(fraction) for fraction in fractions}
        self.count = 0

    def add(self, value: float) -> None:
        """Add one sample to every tracked quantile."""
        self.count += 1
        for estimator in self._estimators.values():
            estimator.add(value)

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples."""
        for value in values:
            self.add(value)

    @property
    def fractions(self) -> Tuple[float, ...]:
        """The tracked quantile fractions, in construction order."""
        return tuple(self._estimators)

    def quantile(self, fraction: float) -> float:
        """Current estimate of one tracked quantile (``KeyError`` if untracked)."""
        return self._estimators[fraction].value

    def as_dict(self) -> Dict[str, float]:
        """Estimates keyed ``"p50"``-style (JSON-friendly; ``{}`` when empty)."""
        if self.count == 0:
            return {}
        return {
            f"p{fraction * 100:g}": estimator.value
            for fraction, estimator in self._estimators.items()
        }


def mean(values: Iterable[float]) -> float:
    """Plain arithmetic mean; an empty iterable yields 0.0.

    The single shared definition behind the record aggregation of
    :mod:`repro.network.network`, :mod:`repro.channels.network` and the
    experiment reports (each used to carry its own copy).
    """
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: List[float], fraction: float) -> float:
    """Linear-interpolation percentile of a list of samples.

    ``fraction`` is in [0, 1]; an empty list yields ``nan`` so callers notice
    missing data instead of silently reporting 0.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {fraction}")
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight
