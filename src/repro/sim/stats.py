"""Online statistics accumulators used by the simulator and the metrics layer."""

from __future__ import annotations

import math
from typing import Iterable, List


class OnlineStats:
    """Accumulates count / mean / variance / min / max without storing samples.

    Uses Welford's algorithm so the variance is numerically stable even for
    millions of latency samples.
    """

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far (0 for < 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to seeing both sample sets."""
        merged = OnlineStats()
        if self.count == 0:
            merged.count = other.count
            merged.mean = other.mean
            merged._m2 = other._m2
            merged.minimum = other.minimum
            merged.maximum = other.maximum
            return merged
        if other.count == 0:
            merged.count = self.count
            merged.mean = self.mean
            merged._m2 = self._m2
            merged.minimum = self.minimum
            merged.maximum = self.maximum
            return merged
        total = self.count + other.count
        delta = other.mean - self.mean
        merged.count = total
        merged.mean = self.mean + delta * other.count / total
        merged._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineStats(count={self.count}, mean={self.mean:.6f}, stdev={self.stdev:.6f})"


class TimeWeightedStats:
    """Time-weighted average of a piecewise-constant signal (e.g. queue length)."""

    def __init__(self, initial_time: float = 0.0, initial_value: float = 0.0) -> None:
        self._last_time = initial_time
        self._last_value = initial_value
        self._weighted_sum = 0.0
        self._duration = 0.0
        self.maximum = initial_value

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError("time must be non-decreasing for time-weighted stats")
        span = time - self._last_time
        self._weighted_sum += self._last_value * span
        self._duration += span
        self._last_time = time
        self._last_value = value
        if value > self.maximum:
            self.maximum = value

    def mean(self, until: float | None = None) -> float:
        """Time-weighted mean, optionally extending the last value to ``until``."""
        weighted = self._weighted_sum
        duration = self._duration
        if until is not None and until > self._last_time:
            weighted += self._last_value * (until - self._last_time)
            duration += until - self._last_time
        if duration <= 0:
            return self._last_value
        return weighted / duration


def mean(values: Iterable[float]) -> float:
    """Plain arithmetic mean; an empty iterable yields 0.0.

    The single shared definition behind the record aggregation of
    :mod:`repro.network.network`, :mod:`repro.channels.network` and the
    experiment reports (each used to carry its own copy).
    """
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: List[float], fraction: float) -> float:
    """Linear-interpolation percentile of a list of samples.

    ``fraction`` is in [0, 1]; an empty list yields ``nan`` so callers notice
    missing data instead of silently reporting 0.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1], got {fraction}")
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight
