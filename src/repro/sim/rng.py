"""Seeded random-number streams.

Every stochastic component of the simulation (arrival processes, network
jitter, key selection, endorser selection, ...) draws from its own named
stream, derived deterministically from a single experiment seed.  This keeps
experiments reproducible and lets two configurations differ only in the
parameter under study, not in unrelated random draws.

Hot-path contract: :meth:`RandomStreams.stream` performs a dict lookup (and a
SHA-256 derivation on first use), so components must resolve their streams
*once at build time* and keep the returned ``random.Random`` handle — never
call ``stream()`` inside a per-event method (``scripts/check_hot_path.py``
enforces this).  For bulk draws with a known count, the batched fast paths
(:func:`exponential_draws`, :meth:`RandomStreams.exponential_batch`, and the
``sample_batch`` methods of the key distributions) hoist the per-draw method
dispatch while replaying the *exact same* underlying ``random.Random``
sequence as the equivalent per-call draws — both the values and the
generator state after the batch are bit-identical.
"""

from __future__ import annotations

import hashlib
import random
from math import log as _log
from typing import Dict, List


def exponential_draws(rng: random.Random, rate: float, count: int) -> List[float]:
    """``count`` draws byte-identical to ``count`` ``rng.expovariate(rate)`` calls.

    CPython's ``expovariate(lambd)`` is ``-log(1.0 - random()) / lambd``; this
    replays that arithmetic with the uniform source and ``log`` hoisted out of
    the loop, consuming exactly one underlying uniform per draw.
    """
    random_ = rng.random
    return [-_log(1.0 - random_()) / rate for _ in range(count)]


def derive_seed(*parts: object) -> int:
    """Derive a 64-bit seed by hashing the given components.

    The components are joined with an unambiguous separator and hashed with
    SHA-256, so seeds derived from different component tuples never collide by
    arithmetic accident (unlike ``base_seed + offset`` schemes, where adjacent
    base seeds share repetition seeds).  Used by the experiment harness to give
    every repetition of every configuration its own independent stream family.
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, independently seeded ``random.Random`` streams."""

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def exponential_batch(self, name: str, rate: float, count: int) -> List[float]:
        """``count`` exponential draws from stream ``name`` (batched fast path).

        Byte-identical to ``count`` ``stream(name).expovariate(rate)`` calls —
        same values, same stream state afterwards — with the per-draw method
        dispatch hoisted.  Only for callers that know the draw count up front;
        data-dependent consumers must replay per-call loops instead.
        """
        return exponential_draws(self.stream(name), rate, count)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory, e.g. one per repetition of an experiment."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
