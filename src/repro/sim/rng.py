"""Seeded random-number streams.

Every stochastic component of the simulation (arrival processes, network
jitter, key selection, endorser selection, ...) draws from its own named
stream, derived deterministically from a single experiment seed.  This keeps
experiments reproducible and lets two configurations differ only in the
parameter under study, not in unrelated random draws.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(*parts: object) -> int:
    """Derive a 64-bit seed by hashing the given components.

    The components are joined with an unambiguous separator and hashed with
    SHA-256, so seeds derived from different component tuples never collide by
    arithmetic accident (unlike ``base_seed + offset`` schemes, where adjacent
    base seeds share repetition seeds).  Used by the experiment harness to give
    every repetition of every configuration its own independent stream family.
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory, e.g. one per repetition of an experiment."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
