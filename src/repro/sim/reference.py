"""Reference heapq simulation engine (the pre-calendar-queue implementation).

This module preserves the original single-binary-heap engine verbatim, for
two purposes only:

* **Differential-testing oracle** — the hypothesis property suite in
  ``tests/test_property_engine_equivalence.py`` replays random
  schedule/cancel/run-until interleavings against both engines and asserts
  identical callback traces and clock values.
* **Benchmark baseline** — ``benchmarks/bench_engine_speed.py`` measures the
  calendar-queue engine's events/sec against this implementation and asserts
  the acceptance floor recorded in ``BENCH_engine_speed.json``.

It intentionally keeps the two historical warts the production engine fixed:
cancelled events stay in the heap (``pending_events`` counts them) and
non-finite delays slip past the ``delay < 0`` guard.  Production code must
import :class:`repro.sim.engine.Simulator` instead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class ReferenceEvent:
    """A scheduled callback in the reference simulation."""

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class ReferenceSimulator:
    """The original heapq-based deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[ReferenceEvent] = []
        self._sequence = 0
        self._processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (including cancelled ones)."""
        return len(self._heap)

    def live_pending_events(self) -> int:
        """Number of queued events that are not cancelled.

        The historical ``pending_events`` counts cancelled events too; the
        equivalence suite compares this live count against the production
        engine's ``pending_events``.
        """
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> ReferenceEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> ReferenceEvent:
        """Schedule ``callback(*args)`` at the absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time:.6f} before the current time "
                f"t={self._now:.6f}"
            )
        event = ReferenceEvent(time=time, sequence=self._sequence, callback=callback, args=args)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def post(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """API-compatible alias for :meth:`schedule` that drops the handle."""
        self.schedule(delay, callback, *args)

    def post_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """API-compatible alias for :meth:`schedule_at` that drops the handle."""
        self.schedule_at(time, callback, *args)

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap is empty or the clock passes ``until``."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args)
                self._processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_empty(self) -> None:
        """Run until no events remain, regardless of how long that takes."""
        self.run(until=None)
