"""Discrete-event simulation substrate.

This package contains the small, self-contained discrete-event simulation (DES)
engine on which the Fabric network model is built: a calendar-queue scheduler
with a virtual clock (:mod:`repro.sim.engine`, with the original heapq engine
kept as a differential-testing oracle in :mod:`repro.sim.reference`), an
opt-in engine profiler (:mod:`repro.sim.profile`), single-server FIFO service
stations used to model peers and the ordering service
(:mod:`repro.sim.resources`), seeded random-number streams
(:mod:`repro.sim.rng`) and online statistics accumulators
(:mod:`repro.sim.stats`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.profile import EngineProfiler
from repro.sim.reference import ReferenceSimulator
from repro.sim.resources import ServiceStation
from repro.sim.rng import RandomStreams
from repro.sim.stats import OnlineStats, TimeWeightedStats

__all__ = [
    "Event",
    "Simulator",
    "EngineProfiler",
    "ReferenceSimulator",
    "ServiceStation",
    "RandomStreams",
    "OnlineStats",
    "TimeWeightedStats",
]
