"""Discrete-event simulation substrate.

This package contains the small, self-contained discrete-event simulation (DES)
engine on which the Fabric network model is built: an event heap with a virtual
clock (:mod:`repro.sim.engine`), single-server FIFO service stations used to
model peers and the ordering service (:mod:`repro.sim.resources`), seeded
random-number streams (:mod:`repro.sim.rng`) and online statistics accumulators
(:mod:`repro.sim.stats`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.resources import ServiceStation
from repro.sim.rng import RandomStreams
from repro.sim.stats import OnlineStats, TimeWeightedStats

__all__ = [
    "Event",
    "Simulator",
    "ServiceStation",
    "RandomStreams",
    "OnlineStats",
    "TimeWeightedStats",
]
