"""Shard planning and process budgeting for parallel multi-channel runs.

A multi-channel deployment whose channels never talk to each other is an
embarrassingly parallel simulation: each channel owns its ledger, state
store, ordering service and RNG stream family, so its event sequence is a
pure function of its own inputs.  This module decides *which* channels can
run apart and *how many* worker processes they may occupy:

* :func:`plan_shards` partitions the channel topology into shards by
  connected components of the cross-channel traffic graph.  With
  ``cross_channel_rate == 0`` there are no edges and every channel is its own
  shard; any positive rate couples channels through the two-phase prepare
  path (``uniform`` partners connect everything, ``neighbor`` partners form
  a ring) and coupled channels co-locate in one shard.
* :class:`ExecutionConfig` is the knob on
  :class:`~repro.network.config.NetworkConfig` selecting the execution
  strategy: ``shard_workers=1`` (default) keeps the classic shared-clock
  path, ``0`` sizes the worker pool automatically, ``N >= 2`` caps it, and
  ``conservative=True`` opts a fully-coupled topology into the
  epoch-synchronized engine (see :mod:`repro.channels.sharded`).
* :func:`resolve_worker_count` / :func:`process_budget` implement the shared
  process budget: the experiment runner exports
  :data:`PROCESS_BUDGET_ENV` before fanning cells out, so runner workers ×
  shard workers never oversubscribes the machine.

The execution strategy never changes *what* a run computes — sharded
execution with ``cross_channel_rate == 0`` is bit-identical to the
shared-clock path — so a plain :class:`ExecutionConfig` is excluded from the
experiment cell hash.  The one exception is ``conservative=True``, which has
its own (deterministic, but distinct) epoch semantics and therefore its own
cell identity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Environment variable through which a parent process (the experiment
#: runner) bounds the number of simulation worker processes this process
#: tree may start.  Inherited by forked pool workers, so nested parallelism
#: (runner workers × shard workers) stays within one machine-wide budget.
PROCESS_BUDGET_ENV = "REPRO_PROCESS_BUDGET"


@dataclass(frozen=True)
class ExecutionConfig:
    """Parallel-execution strategy of a multi-channel run.

    ``shard_workers`` selects the path: ``1`` (the default) is the classic
    shared-clock simulation, ``0`` shards independent channels across an
    automatically sized worker pool, and ``N >= 2`` shards with at most ``N``
    workers.  ``conservative=True`` additionally opts coupled topologies
    (``cross_channel_rate > 0``) into barrier-synchronized epoch execution —
    a *distinct* simulation semantics, golden-pinned separately, never
    claimed identical to the shared clock.
    """

    shard_workers: int = 1
    conservative: bool = False

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for invalid worker counts."""
        if isinstance(self.shard_workers, bool) or not isinstance(self.shard_workers, int):
            raise ConfigurationError(
                f"shard_workers must be an integer, got {self.shard_workers!r}"
            )
        if self.shard_workers < 0:
            raise ConfigurationError(
                f"shard_workers must be >= 0 (0 = auto), got {self.shard_workers}"
            )

    @property
    def sharded(self) -> bool:
        """True when this config selects any non-shared-clock path."""
        return self.conservative or self.shard_workers != 1


@dataclass(frozen=True)
class ShardPlan:
    """A partition of ``channels`` channel indices into independent shards.

    ``shards`` holds one sorted tuple of channel indices per shard, ordered
    by each shard's smallest member — the deterministic order every consumer
    (worker dispatch, record merge) iterates in.
    """

    channels: int
    shards: Tuple[Tuple[int, ...], ...]

    @property
    def shard_count(self) -> int:
        """Number of independent shards."""
        return len(self.shards)

    @property
    def is_partitioned(self) -> bool:
        """True when the topology splits into more than one shard."""
        return len(self.shards) > 1

    def shard_of(self, channel: int) -> int:
        """The index (in :attr:`shards` order) of the shard owning ``channel``."""
        for shard_index, members in enumerate(self.shards):
            if channel in members:
                return shard_index
        raise ConfigurationError(f"channel {channel} is outside this plan of {self.channels}")


def cross_channel_edges(
    channels: int, cross_channel_rate: float, partner_strategy: str = "uniform"
) -> List[Tuple[int, int]]:
    """The edges of the cross-channel traffic graph.

    An edge ``(i, j)`` means a transaction homed on one of the two channels
    may run the two-phase prepare against the other, i.e. their simulations
    can exchange messages.  Zero rate produces no edges; ``uniform`` partner
    selection may pair any two channels; ``neighbor`` selection forms a ring.
    Unknown strategies are treated as fully coupled — the safe direction.
    """
    if channels <= 1 or cross_channel_rate <= 0.0:
        return []
    if partner_strategy == "neighbor":
        if channels == 2:
            return [(0, 1)]
        return [(index, (index + 1) % channels) for index in range(channels)]
    return [(i, j) for i in range(channels) for j in range(i + 1, channels)]


def connected_components(
    channels: int, edges: Sequence[Tuple[int, int]]
) -> Tuple[Tuple[int, ...], ...]:
    """Connected components of the channel graph, ordered by smallest member."""
    parent = list(range(channels))

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for left, right in edges:
        if not (0 <= left < channels and 0 <= right < channels):
            raise ConfigurationError(
                f"edge ({left}, {right}) is outside the channel range [0, {channels})"
            )
        parent[find(left)] = find(right)

    members: dict = {}
    for channel in range(channels):
        members.setdefault(find(channel), []).append(channel)
    return tuple(
        tuple(sorted(group)) for group in sorted(members.values(), key=lambda group: group[0])
    )


def plan_shards(
    channels: int, cross_channel_rate: float, partner_strategy: str = "uniform"
) -> ShardPlan:
    """Partition the channel topology into independently simulatable shards."""
    if channels < 1:
        raise ConfigurationError(f"need at least one channel, got {channels}")
    edges = cross_channel_edges(channels, cross_channel_rate, partner_strategy)
    return ShardPlan(channels=channels, shards=connected_components(channels, edges))


def available_cores() -> int:
    """CPU cores available to this process (affinity-aware, never < 1)."""
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    return max(1, cores)


def _env_budget() -> int:
    """The :data:`PROCESS_BUDGET_ENV` cap, or 0 when unset/invalid."""
    raw = os.environ.get(PROCESS_BUDGET_ENV)
    if raw is None:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 0
    return value if value >= 1 else 0


def process_budget() -> int:
    """How many simulation processes this process tree may use.

    The :data:`PROCESS_BUDGET_ENV` environment variable (set by the
    experiment runner around its pool) takes precedence; otherwise the
    machine's available cores.
    """
    return _env_budget() or available_cores()


def resolve_worker_count(requested: int, shard_count: int) -> int:
    """The worker-process count a sharded run actually uses.

    ``requested`` follows :class:`ExecutionConfig` semantics: ``0`` sizes the
    pool from :func:`process_budget`, an explicit ``N`` is honored up to the
    shard count — except when a parent runner exported
    :data:`PROCESS_BUDGET_ENV`, which caps explicit requests too (that is the
    nested-parallelism guard).  Never exceeds ``shard_count`` and never
    returns less than 1.
    """
    if shard_count <= 1:
        return 1
    if requested == 0:
        limit = process_budget()
    else:
        limit = requested
        env_cap = _env_budget()
        if env_cap:
            limit = min(limit, env_cap)
    return max(1, min(limit, shard_count))


def planned_shard_processes(
    channels: int,
    cross_channel_rate: float,
    execution: ExecutionConfig,
    partner_strategy: str = "uniform",
) -> int:
    """Worker processes one run of this shape will occupy (runner budgeting).

    Returns 1 for every configuration that executes in-process: shared-clock
    runs, single-channel runs, fully-coupled topologies (which fall back or
    run the in-process conservative engine) and single-shard plans.
    """
    if channels <= 1 or not execution.sharded or execution.conservative:
        return 1
    plan = plan_shards(channels, cross_channel_rate, partner_strategy)
    if not plan.is_partitioned:
        return 1
    return resolve_worker_count(execution.shard_workers, plan.shard_count)
