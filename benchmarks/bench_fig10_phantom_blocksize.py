"""Figure 10: phantom read conflicts over the block size (SCM chaincode)."""

from conftest import run_figure

from repro.bench.experiments import figure10_phantom_by_block_size


def test_fig10_phantom_by_block_size(benchmark, scale):
    report = run_figure(benchmark, figure10_phantom_by_block_size, scale)
    values = report.column("phantom_read_pct")
    # Phantom reads occur at every block size and no block size eliminates them.
    assert min(values) > 0.0
