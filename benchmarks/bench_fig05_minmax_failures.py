"""Figure 5: minimum and maximum transaction failures over the block-size sweep."""

from conftest import run_figure

from repro.bench.experiments import figure05_minmax_failures


def test_fig05_minmax_failures(benchmark, scale):
    chaincodes = ("EHR",) if scale.name == "quick" else ("EHR", "DV", "DRM")
    report = run_figure(benchmark, figure05_minmax_failures, scale, chaincodes=chaincodes)
    # Choosing the best block size must reduce failures at every rate.
    for row in report.rows:
        least = row[report.headers.index("least_failures_pct")]
        most = row[report.headers.index("most_failures_pct")]
        assert least <= most
