"""Figure 23: Streamchain with and without a RAM disk."""

from conftest import run_figure

from repro.bench.experiments import figure23_streamchain_ramdisk


def test_fig23_streamchain_ramdisk(benchmark, scale):
    report = run_figure(benchmark, figure23_streamchain_ramdisk, scale)
    top_rate = max(report.column("arrival_rate"))
    with_ram = report.value("latency_s", system="Streamchain", arrival_rate=top_rate)
    without_ram = report.value("latency_s", system="Streamchain w/o ramdisk", arrival_rate=top_rate)
    # The RAM disk is responsible for a large part of Streamchain's advantage.
    assert with_ram < without_ram
