"""Figure 11: CouchDB vs LevelDB for the EHR chaincode."""

from conftest import run_figure

from repro.bench.experiments import figure11_database_effect


def test_fig11_database_effect(benchmark, scale):
    report = run_figure(benchmark, figure11_database_effect, scale)
    # LevelDB yields lower latency than CouchDB.
    assert report.value("latency_s", database="leveldb") < report.value(
        "latency_s", database="couchdb"
    )
