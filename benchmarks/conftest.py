"""Shared helpers for the per-figure benchmark modules.

Every benchmark regenerates one table or figure of the paper by calling the
corresponding function in :mod:`repro.bench.experiments` exactly once
(``benchmark.pedantic`` with a single round — the experiment functions already
average over repetitions internally) and printing the resulting rows, so the
output of ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
log recorded in EXPERIMENTS.md.

Every ``bench_*`` module is marked ``slow`` and therefore deselected by the
default test run (``addopts = -m "not slow"`` in ``pytest.ini``); regenerate
the figures explicitly with ``pytest benchmarks/ -m slow``.  The default scale
is a laptop-friendly reduction of the paper's setup (shorter simulated
durations and smaller key populations); set the environment variable
``REPRO_BENCH_SCALE`` to ``standard`` or ``paper`` to run closer to the
original experiments.  The fast, always-on smoke coverage of the benchmark
layer lives in ``test_smoke_runner.py``.

All experiment functions execute through the shared default
:class:`~repro.bench.runner.ExperimentRunner`; set ``REPRO_BENCH_WORKERS`` to
fan the grid cells of each figure out across that many worker processes.  The
runner's content-addressed cache also means a figure regenerated twice in one
session (e.g. by a retrying benchmark round) only simulates once.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.experiments import PAPER_SCALE, QUICK_SCALE, STANDARD_SCALE, Scale
from repro.bench.reporting import format_table
from repro.bench.runner import DEFAULT_CACHE_ENTRIES, ResultCache, configure_default_runner

_SCALES = {"quick": QUICK_SCALE, "standard": STANDARD_SCALE, "paper": PAPER_SCALE}


def bench_scale() -> Scale:
    """The scale selected through the REPRO_BENCH_SCALE environment variable."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return _SCALES.get(name, QUICK_SCALE)


def bench_workers() -> int:
    """The worker count selected through REPRO_BENCH_WORKERS (default 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


def pytest_configure(config):
    """Point the shared default runner at the configured worker count.

    At standard/paper scale the in-memory result cache is disabled: a single
    paper-scale analysis retains a full multi-thousand-transaction ledger, and
    caching every cell of every figure would dominate the session's memory.
    """
    cache = ResultCache(max_entries=DEFAULT_CACHE_ENTRIES) if bench_scale() is QUICK_SCALE else None
    configure_default_runner(workers=bench_workers(), cache=cache)


def pytest_collection_modifyitems(config, items):
    """Mark every figure benchmark (``bench_*`` module) as ``slow``."""
    for item in items:
        if item.fspath.basename.startswith("bench_"):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def scale() -> Scale:
    """Session-wide benchmark scale."""
    return bench_scale()


def run_figure(benchmark, experiment_function, *args, **kwargs):
    """Run one experiment function under pytest-benchmark and print its table."""
    report = benchmark.pedantic(
        experiment_function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(format_table(report.headers, report.rows, title=report.title))
    if report.notes:
        print(report.notes)
    return report
