"""Shared helpers for the per-figure benchmark modules.

Every benchmark regenerates one table or figure of the paper by calling the
corresponding function in :mod:`repro.bench.experiments` exactly once
(``benchmark.pedantic`` with a single round — the experiment functions already
average over repetitions internally) and printing the resulting rows, so the
output of ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
log recorded in EXPERIMENTS.md.

The default scale is a laptop-friendly reduction of the paper's setup (shorter
simulated durations and smaller key populations); set the environment variable
``REPRO_BENCH_SCALE`` to ``standard`` or ``paper`` to run closer to the
original experiments.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.experiments import PAPER_SCALE, QUICK_SCALE, STANDARD_SCALE, Scale
from repro.bench.reporting import format_table

_SCALES = {"quick": QUICK_SCALE, "standard": STANDARD_SCALE, "paper": PAPER_SCALE}


def bench_scale() -> Scale:
    """The scale selected through the REPRO_BENCH_SCALE environment variable."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return _SCALES.get(name, QUICK_SCALE)


@pytest.fixture(scope="session")
def scale() -> Scale:
    """Session-wide benchmark scale."""
    return bench_scale()


def run_figure(benchmark, experiment_function, *args, **kwargs):
    """Run one experiment function under pytest-benchmark and print its table."""
    report = benchmark.pedantic(
        experiment_function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(format_table(report.headers, report.rows, title=report.title))
    if report.notes:
        print(report.notes)
    return report
