"""Smoke guard for sharded multi-process execution (always-on, tier-1).

A fast version of the sharded cells in ``bench_engine_speed.py``: one
2-channel, ~30k-transaction deployment with ``cross_channel_rate=0`` runs
once on the shared clock and once sharded across worker processes.  Two
assertions guard the two halves of the tentpole contract:

* **bit identity, unconditionally** — the sharded merge reproduces the
  shared-clock run fingerprint-for-fingerprint on every machine, including
  single-core CI runners;
* **speed, when cores exist** — with at least 2 physical cores the sharded
  run must sustain ``SMOKE_SPEEDUP_FLOOR``x the shared clock's events/sec.
  The floor (1.5x on 2 shards) sits well under the ideal 2x to absorb noisy
  shared runners; the full bench asserts the real 2x bar on 8 channels.
"""

from __future__ import annotations

from repro.chaincode import create_chaincode
from repro.channels.network import MultiChannelNetwork
from repro.channels.sharded import ShardedChannelNetwork, record_fingerprint
from repro.fabric.variant import create_variant
from repro.ledger.block import reset_transaction_ids
from repro.network.config import NetworkConfig
from repro.sim.profile import EngineProfiler
from repro.sim.shard import ExecutionConfig, available_cores
from repro.workload.workloads import uniform_workload

SMOKE_CHANNELS = 2
SMOKE_ARRIVAL_RATE_PER_CHANNEL = 1000.0
SMOKE_DURATION = 15.0  # ~30k transactions across the two channels
SMOKE_SEED = 11
SMOKE_SPEEDUP_FLOOR = 1.5


# Module-level factories so the sharded configuration stays picklable.
def make_chaincode():
    spec = uniform_workload("EHR", patients=40)
    return create_chaincode(spec.chaincode, **spec.chaincode_kwargs)


def make_variant():
    return create_variant("fabric-1.4")


def smoke_config(execution: ExecutionConfig) -> NetworkConfig:
    return NetworkConfig(
        cluster="C1",
        orgs=2,
        peers_per_org=2,
        clients=4,
        block_size=10,
        database="leveldb",
        channels=SMOKE_CHANNELS,
        cross_channel_rate=0.0,
        execution=execution,
    )


def run_smoke_cell(sharded: bool):
    """Run the smoke deployment; returns ``(record, events_per_sec)``."""
    spec = uniform_workload("EHR", patients=40)
    arrival_rate = SMOKE_ARRIVAL_RATE_PER_CHANNEL * SMOKE_CHANNELS
    reset_transaction_ids()
    if sharded:
        network = ShardedChannelNetwork(
            smoke_config(ExecutionConfig(shard_workers=0)),
            chaincode_factory=make_chaincode,
            variant_factory=make_variant,
            seed=SMOKE_SEED,
        )
        record = network.run(spec.mix, arrival_rate=arrival_rate, duration=SMOKE_DURATION)
        return record, network.engine_summary["events_per_sec"]
    network = MultiChannelNetwork(
        smoke_config(ExecutionConfig()),
        chaincode_factory=make_chaincode,
        variant_factory=make_variant,
        seed=SMOKE_SEED,
    )
    with EngineProfiler(network.sim) as profiler:
        record = network.run(spec.mix, arrival_rate=arrival_rate, duration=SMOKE_DURATION)
    return record, profiler.report()["events_per_sec"]


def test_sharded_execution_smoke():
    shared_record, shared_speed = run_smoke_cell(sharded=False)
    sharded_record, sharded_speed = run_smoke_cell(sharded=True)

    # Identity first: speed means nothing if the answer changed.
    assert sharded_record.execution == "sharded"
    assert sharded_record.shard_count == SMOKE_CHANNELS
    assert record_fingerprint(sharded_record) == record_fingerprint(shared_record)
    assert len(sharded_record.transactions) == len(shared_record.transactions)

    speedup = sharded_speed / shared_speed
    cores = available_cores()
    print(
        f"sharded smoke: {sharded_speed:,.0f} ev/s vs shared {shared_speed:,.0f} ev/s "
        f"({speedup:.2f}x on {cores} cores, floor {SMOKE_SPEEDUP_FLOOR}x when cores >= 2)"
    )
    if cores >= 2:
        assert speedup >= SMOKE_SPEEDUP_FLOOR, (
            f"sharded execution sustained only {speedup:.2f}x the shared clock "
            f"({sharded_speed:,.0f} vs {shared_speed:,.0f} ev/s) on {cores} cores; "
            f"smoke floor is {SMOKE_SPEEDUP_FLOOR}x"
        )
