"""Figure 17: Fabric++ vs Fabric 1.4 over the block size."""

from conftest import run_figure

from repro.bench.experiments import figure17_fabricpp_block_size


def test_fig17_fabricpp_block_size(benchmark, scale):
    report = run_figure(benchmark, figure17_fabricpp_block_size, scale)
    # At the default block size (100) Fabric++ reduces the total failures.
    fabric = report.value("failures_pct", variant="fabric-1.4", block_size=100)
    fabricpp = report.value("failures_pct", variant="fabric++", block_size=100)
    assert fabricpp < fabric
