"""Figure 26: comparison of all four Fabric systems on the C1 cluster."""

from conftest import run_figure

from repro.bench.experiments import figure26_system_comparison


def test_fig26_system_comparison(benchmark, scale):
    report = run_figure(benchmark, figure26_system_comparison, scale)
    top_rate = max(report.column("arrival_rate"))
    fabric_failures = report.value("failures_pct", variant="fabric-1.4", arrival_rate=top_rate)
    # Streamchain and FabricSharp clearly reduce the total failures; Fabric++
    # is only on par at this block size (10) because there is little intra-block
    # reordering potential in tiny blocks (Section 5.2.1).
    for variant in ("streamchain", "fabricsharp"):
        assert report.value("failures_pct", variant=variant, arrival_rate=top_rate) < fabric_failures
    assert (
        report.value("failures_pct", variant="fabric++", arrival_rate=top_rate)
        <= fabric_failures + 3.0
    )
    # ... and Streamchain has the lowest latency of all systems.
    latencies = {
        variant: report.value("latency_s", variant=variant, arrival_rate=top_rate)
        for variant in ("fabric-1.4", "fabric++", "streamchain", "fabricsharp")
    }
    assert latencies["streamchain"] == min(latencies.values())
