"""Smoke guard for the calendar-queue event engine (always-on, tier-1).

A fast version of ``bench_engine_speed.py`` that runs inside the default test
selection and the CI bench-smoke job.  It drives the same endorse/collect/
submit cascade at 30k transactions through both the bucketed
:class:`~repro.sim.engine.Simulator` and the preserved pre-overhaul
:class:`~repro.sim.reference.ReferenceSimulator` and asserts the speed floor
in-test: if a change ever drags the hot path back toward the O(log n)
per-event heap churn this trips long before anyone reads a benchmark chart.

The floor here (2.5x) sits below the slow bench's 3.0x acceptance bar to
leave headroom for noisy shared CI runners; the measured ratio on an idle
machine is ~3.6x.
"""

from __future__ import annotations

from repro.bench.enginespeed import cascade_cell

SMOKE_TRANSACTIONS = 30_000
SMOKE_SPEEDUP_FLOOR = 2.5


def test_calendar_engine_beats_heapq_reference_on_cascade():
    reference = cascade_cell("heapq-reference", SMOKE_TRANSACTIONS)
    calendar = cascade_cell("calendar", SMOKE_TRANSACTIONS)

    # Both engines dispatch the identical schedule before speed is compared.
    assert calendar["events"] == reference["events"]
    assert calendar["submitted"] == reference["submitted"] == SMOKE_TRANSACTIONS
    assert calendar["timeouts_fired"] == reference["timeouts_fired"] == 0

    speedup = calendar["events_per_sec"] / reference["events_per_sec"]
    assert speedup >= SMOKE_SPEEDUP_FLOOR, (
        f"calendar engine sustained only {speedup:.2f}x the reference events/sec "
        f"({calendar['events_per_sec']:,.0f} vs {reference['events_per_sec']:,.0f}); "
        f"smoke floor is {SMOKE_SPEEDUP_FLOOR}x"
    )
