"""Retry mitigation: client-effective failure rate vs raw failure rate and
goodput per retry policy, plus retry-storm containment via the global
resubmission rate cap (extension beyond the paper, see repro.lifecycle)."""

from conftest import run_figure

from repro.bench.experiments import retry_mitigation, retry_storm_cap


def test_retry_mitigation_lowers_client_effective_failures(benchmark, scale):
    report = run_figure(benchmark, retry_mitigation, scale)
    raw = dict(zip(report.column("retry_policy"), report.column("raw_failure_pct")))
    effective = dict(
        zip(report.column("retry_policy"), report.column("client_effective_failure_pct"))
    )
    goodput = dict(zip(report.column("retry_policy"), report.column("goodput_tps")))
    # Without retries the two failure rates coincide: every attempt is a
    # logical request.
    assert effective["none"] == raw["none"]
    # With retries enabled, the failure rate a client experiences falls well
    # below the raw per-attempt rate the blockchain records...
    for policy in ("immediate", "fixed", "jittered"):
        assert effective[policy] < raw[policy]
        assert effective[policy] < effective["none"]
    # ...while jittered backoff keeps goodput within 10% of the no-retry
    # baseline (the acceptance bar of the lifecycle refactor).
    assert goodput["jittered"] >= 0.9 * goodput["none"]


def test_retry_storm_cap_bounds_amplification(benchmark, scale):
    report = run_figure(benchmark, retry_storm_cap, scale)
    caps = report.column("rate_cap")
    amplification = dict(zip(caps, report.column("retry_amplification")))
    denied = dict(zip(caps, report.column("rate_denied")))
    uncapped, tightest = caps[0], caps[-1]
    # The uncapped storm amplifies load; the tightest cap sheds resubmissions
    # (rate_denied > 0) and bounds the amplification factor.
    assert denied[uncapped] == 0
    assert denied[tightest] > 0
    assert amplification[tightest] < amplification[uncapped]
