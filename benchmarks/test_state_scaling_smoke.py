"""Smoke guard for the copy-on-write state layer (always-on, tier-1).

A fast, deterministic version of ``bench_state_scaling.py`` that runs inside
the default test selection and the CI bench-smoke job.  Its peak-memory
assertions (via ``tracemalloc``, no extra dependencies) are the regression
tripwire: if peer state ever goes back to O(peers x state) — a deep copy of
the genesis population per endorser — these tests fail long before anyone
reads a benchmark chart.
"""

from __future__ import annotations

import gc
import tracemalloc

from repro.chaincode.genchain import GenChainChaincode
from repro.fabric.variant import create_variant
from repro.ledger.factory import make_state_store
from repro.network.config import NetworkConfig
from repro.network.network import FabricNetwork

STATE_KEYS = 20_000


def traced_peak(build) -> int:
    """Peak traced allocation of running ``build()`` once."""
    gc.collect()
    tracemalloc.start()
    result = build()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del result
    gc.collect()
    return peak


def populated_base():
    base = make_state_store("leveldb")
    base.populate(
        {f"gk{index:08d}": {"value": index, "writes": 0} for index in range(STATE_KEYS)}
    )
    return base


def test_eight_overlays_cost_a_fraction_of_eight_deep_copies():
    base = populated_base()
    base.freeze()
    copy_peak = traced_peak(lambda: [base.copy() for _ in range(8)])
    overlay_peak = traced_peak(lambda: [base.overlay() for _ in range(8)])
    assert overlay_peak * 4 < copy_peak, (
        f"8 overlays peaked at {overlay_peak} bytes vs {copy_peak} bytes for "
        "8 deep copies; the O(peers x state) regression is back"
    )


def test_network_build_peak_rss_stays_near_one_state_copy():
    """Building an 8-endorser network must not replicate the genesis state.

    The peak is budgeted against the footprint of a single populated store:
    the build holds one shared frozen base plus overlays and wiring, so it
    must stay well under the pre-refactor cost of ~9 full copies (canonical
    store + 8 endorsers).
    """
    single_store_peak = traced_peak(populated_base)

    def build_network():
        config = NetworkConfig(
            cluster="C1",
            orgs=4,
            peers_per_org=2,
            endorsers_per_org=2,
            clients=2,
            database="leveldb",
            block_size=10,
        )
        return FabricNetwork(
            config,
            GenChainChaincode(num_keys=STATE_KEYS),
            create_variant("fabric-1.4"),
            seed=3,
        )

    network_peak = traced_peak(build_network)
    assert network_peak < 3 * single_store_peak, (
        f"8-endorser network build peaked at {network_peak} bytes "
        f"(budget: 3x one {single_store_peak}-byte state copy); endorser "
        "state is being replicated again"
    )
