"""Figure 12: effect of the number of organizations."""

from conftest import run_figure

from repro.bench.experiments import figure12_organizations


def test_fig12_organizations(benchmark, scale):
    counts = (2, 6, 10) if scale.name == "quick" else (2, 4, 6, 8, 10)
    report = run_figure(benchmark, figure12_organizations, scale, organization_counts=counts)
    orgs = report.column("organizations")
    endorsement = dict(zip(orgs, report.column("endorsement_pct")))
    latency = dict(zip(orgs, report.column("latency_s")))
    # More organizations -> more endorsement policy failures and higher latency.
    assert endorsement[max(orgs)] >= endorsement[min(orgs)]
    assert latency[max(orgs)] > latency[min(orgs)]
