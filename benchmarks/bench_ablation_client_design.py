"""Ablations: read-only transaction filtering and the client-side endorsement check."""

from conftest import run_figure

from repro.bench.experiments import ablation_client_side_check, ablation_readonly_filtering


def test_ablation_readonly_filtering(benchmark, scale):
    report = run_figure(benchmark, ablation_readonly_filtering, scale)
    submit = report.value("committed_throughput_tps", submit_read_only=True)
    skip = report.value("committed_throughput_tps", submit_read_only=False)
    # Skipping read-only transactions reduces what is written to the chain.
    assert skip < submit


def test_ablation_client_side_check(benchmark, scale):
    report = run_figure(benchmark, ablation_client_side_check, scale)
    # The optional client-side check must not increase latency.
    with_check = report.value("latency_s", client_side_check=True)
    without_check = report.value("latency_s", client_side_check=False)
    assert with_check <= without_check * 1.1
