"""Table 4: effect of the database type on the genChain workloads."""

from conftest import run_figure

from repro.bench.experiments import table04_database_types


def test_table04_database_types(benchmark, scale):
    report = run_figure(benchmark, table04_database_types, scale)
    # LevelDB must beat CouchDB on latency for the range-heavy workload (paper: 4.1 s vs 101.6 s).
    couch = report.value("latency_s", workload="RaH", database="couchdb")
    level = report.value("latency_s", workload="RaH", database="leveldb")
    assert level < couch
    # Per-call GetState latency must reflect the Table 4 gap (0.6 ms vs 8.3 ms).
    assert report.value("GetState_ms", workload="RH", database="couchdb") > report.value(
        "GetState_ms", workload="RH", database="leveldb"
    )
