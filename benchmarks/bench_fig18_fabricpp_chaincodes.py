"""Figure 18: Fabric++ vs Fabric 1.4 across the use-case chaincodes."""

from conftest import run_figure

from repro.bench.experiments import figure18_fabricpp_chaincodes


def test_fig18_fabricpp_chaincodes(benchmark, scale):
    chaincodes = ("EHR", "DV") if scale.name == "quick" else ("EHR", "DV", "SCM", "DRM")
    report = run_figure(benchmark, figure18_fabricpp_chaincodes, scale, chaincodes=chaincodes)
    # The chaincode with large range queries (DV) keeps a (much) higher latency
    # and failure rate than EHR even under Fabric++ (Section 5.2.3).
    dv_latency = report.value("latency_s", variant="fabric++", chaincode="DV")
    ehr_latency = report.value("latency_s", variant="fabric++", chaincode="EHR")
    assert dv_latency > ehr_latency
    dv_failures = report.value("failures_pct", variant="fabric++", chaincode="DV")
    ehr_failures = report.value("failures_pct", variant="fabric++", chaincode="EHR")
    assert dv_failures > ehr_failures
