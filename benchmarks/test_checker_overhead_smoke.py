"""Overhead guard: the isolation checker is free when off, cheap when on.

Tier-1 counterpart of ``bench_checker_overhead.py``, mirroring
``test_observability_overhead.py``:

* **Structural** — building a deployment with the default (disabled)
  :class:`~repro.checker.config.CheckerConfig` installs nothing: no checker
  object, no bus listener, no ``isolation`` report on the run record.  This
  catches a zero-cost regression exactly, independent of machine noise.
* **Measured** — with checking *enabled*, the full pipeline must sustain at
  least ``OVERHEAD_FLOOR`` of the unchecked events/sec (the issue's <= 10%
  acceptance bar).  Each round pairs one unchecked run with one checked run
  back to back and the guard takes the *median* of the per-round ratios, so
  scheduler jitter on shared CI runners cancels out.  Both runs of a pair are
  the same deterministic cell, asserted event-for-event, so the ratio
  isolates exactly the cost of the online serialization-graph maintenance.
"""

from __future__ import annotations

import gc
import statistics
import time

from repro.bench.harness import ExperimentConfig, run_repetition
from repro.checker.config import CheckerConfig
from repro.fabric import create_variant
from repro.network.config import NetworkConfig
from repro.network.network import FabricNetwork

ROUNDS = 5
OVERHEAD_FLOOR = 0.90  # checked events/sec must stay within 10% of unchecked

SMOKE_NETWORK = NetworkConfig(cluster="C1", database="leveldb", block_size=10)
SMOKE_CELL = ExperimentConfig(
    network=SMOKE_NETWORK, arrival_rate=200.0, duration=6.0, seed=7
)
CHECKED_CELL = SMOKE_CELL.with_overrides(
    network=SMOKE_NETWORK.copy(checker=CheckerConfig(enabled=True))
)


# ------------------------------------------------------------------ structural
def test_disabled_checker_installs_nothing():
    config = NetworkConfig(cluster="C1", database="leveldb", block_size=10)
    assert not config.checker.enabled
    network = FabricNetwork(
        config=config,
        chaincode=ExperimentConfig().build_chaincode(),
        variant=create_variant("fabric-1.4"),
        seed=7,
    )
    assert network.isolation_checker is None
    assert not network.bus._listeners, "a disabled checker subscribed a bus listener"


def test_disabled_checker_is_the_default_everywhere():
    assert not CheckerConfig().enabled
    assert not NetworkConfig().checker.enabled
    assert not ExperimentConfig().network.checker.enabled


def test_disabled_checker_leaves_no_report():
    analysis = run_repetition(SMOKE_CELL.with_overrides(duration=1.0), 0)
    assert analysis.record.isolation is None
    assert analysis.metrics.isolation == {}


# -------------------------------------------------------------------- measured
def timed_cell(config: ExperimentConfig) -> tuple:
    """One full-pipeline run, timed with the cyclic collector quiesced."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        analysis = run_repetition(config, 0)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    events = sum(analysis.record.lifecycle_counts.values())
    return events / wall, analysis.record


def test_checker_overhead_within_ten_percent():
    # Warm both code paths once; the first pass through the network/chaincode
    # code in a process runs well below steady state.
    timed_cell(SMOKE_CELL)
    timed_cell(CHECKED_CELL)

    ratios = []
    for _ in range(ROUNDS):
        baseline_eps, baseline_record = timed_cell(SMOKE_CELL)
        checked_eps, checked_record = timed_cell(CHECKED_CELL)
        # The checker observes; it must not perturb the simulation.
        assert checked_record.lifecycle_counts == baseline_record.lifecycle_counts
        assert len(checked_record.transactions) == len(baseline_record.transactions)
        # ...and the conflict-free commit-ordered history must certify.
        assert checked_record.isolation is not None
        assert checked_record.isolation.verdict == "CERTIFIED-SERIALIZABLE"
        ratios.append(checked_eps / baseline_eps)

    ratio = statistics.median(ratios)
    assert ratio >= OVERHEAD_FLOOR, (
        f"pipeline with isolation checking sustained a median {ratio:.3f}x of the "
        f"unchecked events/sec over {ROUNDS} paired rounds "
        f"({[f'{r:.3f}' for r in ratios]}); floor is {OVERHEAD_FLOOR}x"
    )
