"""Ablation: adaptive block size vs static block sizes (Section 6.2)."""

from conftest import run_figure

from repro.bench.experiments import ablation_adaptive_block_size


def test_ablation_adaptive_block_size(benchmark, scale):
    report = run_figure(benchmark, ablation_adaptive_block_size, scale)
    # Across the evaluated arrival rates the adaptive policy accumulates no more
    # failures than always running with the large static block size.
    adaptive = sum(
        row[report.headers.index("failures_pct")]
        for row in report.rows_where(policy="adaptive")
    )
    static_large = sum(
        row[report.headers.index("failures_pct")]
        for row in report.rows_where(policy="static-large")
    )
    assert adaptive <= static_large + 1.0
