"""Smoke guard for the allocation-lean transaction pipeline (always-on, tier-1).

A fast version of the full-pipeline cells in ``bench_engine_speed.py``: a
short single-channel EHR deployment is driven through the calendar engine with
an :class:`~repro.sim.profile.EngineProfiler` attached and the sustained
events/sec is asserted against an absolute floor.  If a change drags the hot
path back toward per-event allocation churn (``__dict__`` instances, per-call
stream resolution, per-peer block revalidation) this trips inside the default
test selection, long before the slow bench runs.

Measurement protocol: one discarded warm-up run, then best-of-``SMOKE_TRIALS``
with the cyclic garbage collector paused (collected before and after) — the
first run of a cell in a fresh process is dominated by bytecode warm-up and
allocator growth (~30% slower than steady state), gen-2 collections triggered
mid-run by whatever heap the preceding test session left behind cost up to
another 30%, and "best of" is the standard way to ask "how fast can this
machine run it" without averaging in scheduler noise.

The floor (30k ev/s) sits far below the ~110k ev/s a warm idle single core
sustains after the hot-path overhaul, leaving headroom for slow shared CI
runners; the tight regression bar is the slow bench's
``NETWORK_1CH_SPEEDUP_FLOOR`` (2x the committed pre-overhaul baseline).
"""

from __future__ import annotations

import gc

from repro.chaincode import create_chaincode
from repro.fabric.variant import create_variant
from repro.network.config import NetworkConfig
from repro.network.network import FabricNetwork
from repro.sim.profile import EngineProfiler
from repro.workload.workloads import uniform_workload

SMOKE_ARRIVAL_RATE = 400.0
SMOKE_DURATION = 4.0
SMOKE_SEED = 11
SMOKE_TRIALS = 3
SMOKE_EVENTS_PER_SEC_FLOOR = 30_000.0


def _pipeline_cell() -> dict:
    """One short single-channel full-pipeline run, profiled."""
    spec = uniform_workload("EHR", patients=40)
    config = NetworkConfig(
        cluster="C1",
        orgs=2,
        peers_per_org=2,
        clients=4,
        block_size=10,
        database="leveldb",
    )
    network = FabricNetwork(
        config,
        create_chaincode(spec.chaincode, **spec.chaincode_kwargs),
        create_variant("fabric-1.4"),
        seed=SMOKE_SEED,
    )
    profiler = EngineProfiler(network.sim)
    with profiler:
        record = network.run(
            spec.mix, arrival_rate=SMOKE_ARRIVAL_RATE, duration=SMOKE_DURATION
        )
    report = profiler.report()
    report["transactions"] = len(record.transactions)
    return report


def test_pipeline_sustains_smoke_floor():
    warmup = _pipeline_cell()
    gc.collect()
    gc.disable()
    try:
        trials = [_pipeline_cell() for _ in range(SMOKE_TRIALS)]
    finally:
        gc.enable()
        gc.collect()

    # Determinism first: every trial (and the warm-up) dispatches the exact
    # same schedule — only the wall-clock may differ.
    for trial in trials:
        assert trial["events"] == warmup["events"]
        assert trial["transactions"] == warmup["transactions"]
    assert warmup["transactions"] > 0

    best = max(trial["events_per_sec"] for trial in trials)
    assert best >= SMOKE_EVENTS_PER_SEC_FLOOR, (
        f"pipeline sustained only {best:,.0f} ev/s (best of {SMOKE_TRIALS} warm "
        f"trials, {warmup['events']:,} events each); smoke floor is "
        f"{SMOKE_EVENTS_PER_SEC_FLOOR:,.0f} ev/s"
    )
