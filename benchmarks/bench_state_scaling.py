"""State scaling: replica memory and wall-clock vs endorser count and state size.

Quantifies the copy-on-write state layer (``repro.ledger.store``): every cell
of a (peers x state-size) grid builds one genesis base plus N per-peer
replicas and drives a batched block-commit workload through all of them, once
with the legacy deep-copy representation (``base.copy()`` per peer plus a full
``snapshot_versions()`` materialization per block, the pre-refactor FabricSharp
snapshot cost) and once with shared-base overlays (``base.overlay()`` per peer
plus O(changed-keys) epoch snapshots).

The run records its trajectory to ``BENCH_state_scaling.json`` at the repo
root and asserts the headline acceptance numbers: at 8 endorsing peers over
the 100k-key genChain genesis the overlay representation must cut peak store
memory by at least 4x and improve wall-clock time.
"""

from __future__ import annotations

import gc
import json
import time
import tracemalloc
from pathlib import Path

from repro.ledger.factory import make_state_store
from repro.ledger.kvstore import Version
from repro.ledger.store import WriteBatch

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_state_scaling.json"

PEER_COUNTS = (1, 2, 4, 8)
STATE_SIZES = (10_000, 50_000, 100_000)
BLOCKS = 5
WRITES_PER_BLOCK = 200


def genesis_state(num_keys: int) -> dict:
    """The genChain-shaped genesis population of ``num_keys`` records."""
    return {f"gk{index:08d}": {"value": index, "writes": 0} for index in range(num_keys)}


def build_base(num_keys: int):
    base = make_state_store("leveldb")
    base.populate(genesis_state(num_keys))
    base.freeze()
    return base


def block_batch(block_number: int, num_keys: int) -> WriteBatch:
    """One block's writes: updates, fresh inserts and a few deletes."""
    batch = WriteBatch(block_number)
    stride = max(1, num_keys // WRITES_PER_BLOCK)
    for index in range(WRITES_PER_BLOCK):
        key_index = (index * stride + block_number) % num_keys
        batch.put(
            f"gk{key_index:08d}",
            {"value": key_index, "writes": block_number},
            Version(block_number, index),
        )
    for index in range(10):
        batch.put(
            f"in{block_number:04d}_{index:04d}", {"value": index}, Version(block_number, index)
        )
    batch.delete(f"gk{(block_number * 17) % num_keys:08d}")
    return batch


def run_workload(base, peers: int, num_keys: int, mode: str) -> None:
    """Build ``peers`` replicas and push BLOCKS batched commits through them.

    ``mode`` selects the representation: ``deepcopy`` replicates the full
    store per peer and materializes a full version snapshot per block (the
    pre-refactor behavior); ``overlay`` layers copy-on-write stores over the
    shared base and takes O(changed-keys) epoch snapshots.
    """
    if mode == "deepcopy":
        replicas = [base.copy() for _ in range(peers)]
    else:
        replicas = [base.overlay() for _ in range(peers)]
    for block_number in range(1, BLOCKS + 1):
        for replica in replicas:
            replica.apply_batch(block_batch(block_number, num_keys))
            if mode == "deepcopy":
                snapshot = replica.snapshot_versions()
                del snapshot
            else:
                replica.snapshot(replica.commit_epoch - 1)
        # A few reads per block keep the read path honest in both modes.
        for replica in replicas:
            for index in range(0, num_keys, max(1, num_keys // 50)):
                replica.get(f"gk{index:08d}")
            replica.range("gk00000000", "gk00000064")


def measure_cell(base, peers: int, num_keys: int, mode: str) -> dict:
    """Wall-clock (untraced) and peak traced memory of one grid cell."""
    gc.collect()
    started = time.perf_counter()
    run_workload(base, peers, num_keys, mode)
    elapsed = time.perf_counter() - started
    gc.collect()
    tracemalloc.start()
    run_workload(base, peers, num_keys, mode)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"seconds": elapsed, "peak_bytes": peak}


def test_state_scaling_grid_and_record():
    rows = []
    for num_keys in STATE_SIZES:
        base = build_base(num_keys)
        for peers in PEER_COUNTS:
            deepcopy = measure_cell(base, peers, num_keys, "deepcopy")
            overlay = measure_cell(base, peers, num_keys, "overlay")
            rows.append(
                {
                    "peers": peers,
                    "state_keys": num_keys,
                    "deepcopy_peak_bytes": deepcopy["peak_bytes"],
                    "overlay_peak_bytes": overlay["peak_bytes"],
                    "memory_reduction": deepcopy["peak_bytes"] / max(1, overlay["peak_bytes"]),
                    "deepcopy_seconds": deepcopy["seconds"],
                    "overlay_seconds": overlay["seconds"],
                    "speedup": deepcopy["seconds"] / max(1e-9, overlay["seconds"]),
                }
            )
            print(
                f"keys={num_keys:>7} peers={peers}: "
                f"mem {deepcopy['peak_bytes'] / 1e6:8.1f}MB -> {overlay['peak_bytes'] / 1e6:7.1f}MB "
                f"({rows[-1]['memory_reduction']:5.1f}x), "
                f"time {deepcopy['seconds']:6.3f}s -> {overlay['seconds']:6.3f}s "
                f"({rows[-1]['speedup']:5.1f}x)"
            )
        del base
        gc.collect()

    record = {
        "benchmark": "state_scaling",
        "grid": {
            "peers": list(PEER_COUNTS),
            "state_keys": list(STATE_SIZES),
            "blocks": BLOCKS,
            "writes_per_block": WRITES_PER_BLOCK,
        },
        "rows": rows,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # Acceptance: >= 4x peak store-memory reduction and a wall-clock win at
    # 8 endorsing peers over the 100k-key genesis.
    headline = next(row for row in rows if row["peers"] == 8 and row["state_keys"] == 100_000)
    assert headline["memory_reduction"] >= 4.0, headline
    assert headline["overlay_seconds"] < headline["deepcopy_seconds"], headline

    # A deep-copied replica costs O(state) each, so the deep-copy peak scales
    # with the peer count; an overlay replica only costs its divergence, so
    # the marginal cost of 7 extra overlay peers must be a small fraction of
    # 7 extra deep copies.
    peak_100k = {
        row["peers"]: (row["deepcopy_peak_bytes"], row["overlay_peak_bytes"])
        for row in rows
        if row["state_keys"] == 100_000
    }
    assert peak_100k[8][0] > 4 * peak_100k[1][0]  # deep copies scale with peers
    marginal_deepcopy = peak_100k[8][0] - peak_100k[1][0]
    marginal_overlay = peak_100k[8][1] - peak_100k[1][1]
    assert marginal_overlay * 4 < marginal_deepcopy
