"""Engine speed: the calendar-queue scheduler vs the reference heapq engine.

Quantifies the event-engine overhaul (``repro.sim.engine``): the same
1M-transaction endorse/collect/submit cascade — pre-drawn delay tables, a
watchdog timer armed and cancelled on every eighth transaction, no network
model in the way — is driven once through the preserved pre-overhaul
:class:`~repro.sim.reference.ReferenceSimulator` and once through the
bucketed :class:`~repro.sim.engine.Simulator`, and the events/sec ratio is
the headline acceptance number.  Two full-pipeline cells (a single-channel
and an 8-channel Fabric deployment at matched per-channel load, instrumented
through :class:`~repro.sim.profile.EngineProfiler`) record the wall-clock and
events/sec the calendar engine sustains when every event carries real
endorsement, ordering and validation work.

A second pair of cells measures the sharded execution path
(:class:`~repro.channels.sharded.ShardedChannelNetwork`): the same 8-channel
deployment with ``cross_channel_rate=0`` runs once on the shared clock and
once sharded across worker processes, and their merged records must compare
bit-identical before the sharded events/sec is allowed to count.

The run records all cells to ``BENCH_engine_speed.json`` at the repo root and
asserts the acceptance bars in-test: the calendar engine must sustain at
least ``SPEEDUP_FLOOR``x the events/sec of the heapq reference on the
1M-transaction cascade, and on machines with ``SHARDED_MIN_CORES`` or more
cores the sharded 8-channel cell must sustain ``SHARDED_SPEEDUP_FLOOR``x the
single-process 8-channel cell.
"""

from __future__ import annotations

import gc
import json
from pathlib import Path

from repro.bench.enginespeed import cascade_cell
from repro.chaincode import create_chaincode
from repro.channels.network import MultiChannelNetwork
from repro.channels.sharded import ShardedChannelNetwork, record_fingerprint
from repro.fabric.variant import create_variant
from repro.ledger.block import reset_transaction_ids
from repro.network.config import NetworkConfig
from repro.network.network import FabricNetwork
from repro.sim.profile import EngineProfiler
from repro.sim.shard import ExecutionConfig, available_cores
from repro.workload.workloads import uniform_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_engine_speed.json"

#: The paper-scale cascade: one million transactions, ~5 events each.
CASCADE_TRANSACTIONS = 1_000_000
#: Acceptance: calendar events/sec over heapq events/sec on the 1M cascade.
SPEEDUP_FLOOR = 3.0

#: Full-pipeline cells at matched per-channel load (400 tx/s per channel).
NETWORK_CHANNELS = (1, 8)
NETWORK_ARRIVAL_RATE_PER_CHANNEL = 400.0
NETWORK_DURATION = 15.0
NETWORK_SEED = 11

#: The single-channel pipeline cell as committed before the allocation-lean
#: hot-path overhaul (BENCH_engine_speed.json at commit 9f9cda6, cores=1).
#: The overhaul must sustain at least ``NETWORK_1CH_SPEEDUP_FLOOR`` times
#: this; the floor is deliberately below the ~2.2x measured on an idle
#: machine to leave headroom for noisy shared CI runners.
NETWORK_1CH_BASELINE_EVENTS_PER_SEC = 48_802.24
NETWORK_1CH_SPEEDUP_FLOOR = 2.0

#: The sharded headline pair: 8 independent channels (``cross_channel_rate=0``),
#: shared clock vs one worker process per shard.
SHARDED_CHANNELS = 8
#: Acceptance: sharded over shared-clock events/sec on the rate-0 cell, only
#: asserted on machines with enough cores for the fan-out to mean anything.
SHARDED_SPEEDUP_FLOOR = 2.0
SHARDED_MIN_CORES = 4


# Module-level factories so the sharded configuration stays picklable.
def make_chaincode():
    spec = uniform_workload("EHR", patients=40)
    return create_chaincode(spec.chaincode, **spec.chaincode_kwargs)


def make_variant():
    return create_variant("fabric-1.4")


#: Simulated seconds of the discarded warm-up run before each network cell.
NETWORK_WARMUP_DURATION = 2.0
#: Profiled runs per network cell; the fastest one is recorded.
NETWORK_TRIALS = 3


def network_cell(channels: int) -> dict:
    """Run one full-pipeline deployment on the calendar engine, profiled.

    Both cells run the EHR chaincode under the uniform mix with the arrival
    rate scaled by the channel count, so every channel sees the same load and
    the 8-channel cell measures how the shared simulator clock holds up when
    eight slices interleave on it.

    Measurement protocol — the cell reports capability, not process history:

    * one discarded warm-up run first (the cascade cells warm only the
      engine; the first pass through the network/chaincode/workload code
      paths in a process runs ~25% below steady state);
    * ``NETWORK_TRIALS`` profiled runs, best one recorded (every trial
      dispatches the identical schedule — asserted — so "best of" only
      strips scheduler noise);
    * the cyclic garbage collector is paused across the trials (collected
      before and after): after the 6M-event cascades the gen-2 heap is large
      enough that collections triggered mid-run cost up to 30% of the cell's
      events/sec, all of it measurement noise.
    """
    spec = uniform_workload("EHR", patients=40)
    config = NetworkConfig(
        cluster="C1",
        orgs=2,
        peers_per_org=2,
        clients=4,
        block_size=10,
        database="leveldb",
        channels=channels,
        cross_channel_rate=0.05 if channels > 1 else 0.0,
    )
    def build():
        if channels == 1:
            return FabricNetwork(
                config,
                create_chaincode(spec.chaincode, **spec.chaincode_kwargs),
                create_variant("fabric-1.4"),
                seed=NETWORK_SEED,
            )
        return MultiChannelNetwork(
            config,
            chaincode_factory=lambda: create_chaincode(spec.chaincode, **spec.chaincode_kwargs),
            variant_factory=lambda: create_variant("fabric-1.4"),
            seed=NETWORK_SEED,
        )

    arrival_rate = NETWORK_ARRIVAL_RATE_PER_CHANNEL * channels
    build().run(spec.mix, arrival_rate=arrival_rate, duration=NETWORK_WARMUP_DURATION)
    trials = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(NETWORK_TRIALS):
            network = build()
            profiler = EngineProfiler(network.sim)
            with profiler:
                record = network.run(
                    spec.mix, arrival_rate=arrival_rate, duration=NETWORK_DURATION
                )
            report = profiler.report()
            report["transactions"] = len(record.transactions)
            trials.append(report)
            del network, record
            gc.collect()
    finally:
        gc.enable()
        gc.collect()
    # Determinism: every trial dispatched the identical schedule.
    assert len({(t["events"], t["transactions"]) for t in trials}) == 1
    best = max(trials, key=lambda t: t["events_per_sec"])
    return {
        "cell": f"network-{channels}ch",
        "engine": "calendar",
        "channels": channels,
        "arrival_rate": arrival_rate,
        "duration": NETWORK_DURATION,
        "transactions": best["transactions"],
        "events": best["events"],
        "wall_seconds": best["wall_seconds"],
        "events_per_sec": best["events_per_sec"],
        "trial_events_per_sec": [t["events_per_sec"] for t in trials],
        "max_queue_depth": best["max_queue_depth"],
    }


def rate0_cell(sharded: bool) -> tuple:
    """Run the 8-channel rate-0 deployment; returns ``(row, record)``.

    Same load shape as :func:`network_cell` but with zero cross-channel
    traffic, so the topology partitions into 8 independent shards and the
    sharded path can distribute them across worker processes.
    """
    spec = uniform_workload("EHR", patients=40)
    arrival_rate = NETWORK_ARRIVAL_RATE_PER_CHANNEL * SHARDED_CHANNELS
    execution = ExecutionConfig(shard_workers=0) if sharded else ExecutionConfig()
    config = NetworkConfig(
        cluster="C1",
        orgs=2,
        peers_per_org=2,
        clients=4,
        block_size=10,
        database="leveldb",
        channels=SHARDED_CHANNELS,
        cross_channel_rate=0.0,
        execution=execution,
    )
    reset_transaction_ids()
    if sharded:
        network = ShardedChannelNetwork(
            config, chaincode_factory=make_chaincode, variant_factory=make_variant,
            seed=NETWORK_SEED,
        )
        record = network.run(spec.mix, arrival_rate=arrival_rate, duration=NETWORK_DURATION)
        report = network.engine_summary
        workers = network.shard_workers_used
    else:
        network = MultiChannelNetwork(
            config, chaincode_factory=make_chaincode, variant_factory=make_variant,
            seed=NETWORK_SEED,
        )
        with EngineProfiler(network.sim) as profiler:
            record = network.run(spec.mix, arrival_rate=arrival_rate, duration=NETWORK_DURATION)
        report = profiler.report()
        workers = 1
    row = {
        "cell": f"network-{SHARDED_CHANNELS}ch-rate0" + ("-sharded" if sharded else ""),
        "engine": "calendar",
        "execution": record.execution,
        "channels": SHARDED_CHANNELS,
        "shard_workers": workers,
        "arrival_rate": arrival_rate,
        "duration": NETWORK_DURATION,
        "transactions": len(record.transactions),
        "events": report["events"],
        "wall_seconds": report["wall_seconds"],
        "events_per_sec": report["events_per_sec"],
        "max_queue_depth": report["max_queue_depth"],
    }
    return row, record


def test_engine_speed_grid_and_record():
    rows = []

    cascade = {}
    for engine in ("heapq-reference", "calendar"):
        row = cascade_cell(engine, CASCADE_TRANSACTIONS)
        row["cell"] = "cascade-1m"
        cascade[engine] = row
        rows.append(row)
        print(
            f"cascade tx={row['transactions']:>9,} engine={engine:>16}: "
            f"{row['events']:>9,} events in {row['wall_seconds']:7.2f}s "
            f"({row['events_per_sec']:>9,.0f} ev/s)"
        )
    speedup = cascade["calendar"]["events_per_sec"] / cascade["heapq-reference"]["events_per_sec"]
    print(f"cascade speedup: {speedup:.2f}x (floor {SPEEDUP_FLOOR}x)")

    network_rows = {}
    for channels in NETWORK_CHANNELS:
        row = network_cell(channels)
        network_rows[channels] = row
        rows.append(row)
        print(
            f"network channels={channels}: {row['events']:>9,} events in "
            f"{row['wall_seconds']:7.2f}s ({row['events_per_sec']:>9,.0f} ev/s, "
            f"{row['transactions']:,} transactions)"
        )
    pipeline_speedup = (
        network_rows[1]["events_per_sec"] / NETWORK_1CH_BASELINE_EVENTS_PER_SEC
    )
    print(
        f"pipeline speedup vs committed baseline: {pipeline_speedup:.2f}x "
        f"(floor {NETWORK_1CH_SPEEDUP_FLOOR}x over "
        f"{NETWORK_1CH_BASELINE_EVENTS_PER_SEC:,.0f} ev/s)"
    )

    cores = available_cores()
    shared_row, shared_record = rate0_cell(sharded=False)
    sharded_row, sharded_record = rate0_cell(sharded=True)
    sharded_speedup = sharded_row["events_per_sec"] / shared_row["events_per_sec"]
    for row in (shared_row, sharded_row):
        rows.append(row)
        print(
            f"{row['cell']}: {row['events']:>9,} events in {row['wall_seconds']:7.2f}s "
            f"({row['events_per_sec']:>9,.0f} ev/s, {row['shard_workers']} workers)"
        )
    print(
        f"sharded speedup: {sharded_speedup:.2f}x on {cores} cores "
        f"(floor {SHARDED_SPEEDUP_FLOOR}x when cores >= {SHARDED_MIN_CORES})"
    )

    # Every row records the core count it was measured on, and a core-gated
    # acceptance that did not run on this machine is annotated rather than
    # silently absent from the record.
    for row in rows:
        row["cores"] = cores
    if cores < SHARDED_MIN_CORES:
        sharded_row["skipped_floor"] = True

    record = {
        "benchmark": "engine_speed",
        "grid": {
            "cascade_transactions": CASCADE_TRANSACTIONS,
            "network_channels": list(NETWORK_CHANNELS),
            "network_arrival_rate_per_channel": NETWORK_ARRIVAL_RATE_PER_CHANNEL,
            "network_duration": NETWORK_DURATION,
            "speedup_floor": SPEEDUP_FLOOR,
            "network_1ch_baseline_events_per_sec": NETWORK_1CH_BASELINE_EVENTS_PER_SEC,
            "network_1ch_speedup_floor": NETWORK_1CH_SPEEDUP_FLOOR,
            "sharded_channels": SHARDED_CHANNELS,
            "sharded_speedup_floor": SHARDED_SPEEDUP_FLOOR,
            "sharded_min_cores": SHARDED_MIN_CORES,
        },
        "cascade_speedup": speedup,
        "pipeline_speedup": pipeline_speedup,
        "sharded_speedup": sharded_speedup,
        "cores": cores,
        "rows": rows,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # Acceptance: >= 3x events/sec over the pre-overhaul heapq engine on the
    # paper-scale cascade, and both engines dispatch the identical schedule.
    assert cascade["calendar"]["events"] == cascade["heapq-reference"]["events"]
    assert cascade["calendar"]["submitted"] == cascade["heapq-reference"]["submitted"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"calendar engine sustained only {speedup:.2f}x the reference events/sec "
        f"({cascade['calendar']['events_per_sec']:,.0f} vs "
        f"{cascade['heapq-reference']['events_per_sec']:,.0f}); floor is {SPEEDUP_FLOOR}x"
    )

    # Pipeline acceptance: the allocation-lean hot path must hold >= 2x the
    # committed pre-overhaul single-channel events/sec (the process is warm
    # here — the cascade cells above already ran in it).
    assert pipeline_speedup >= NETWORK_1CH_SPEEDUP_FLOOR, (
        f"single-channel pipeline sustained only "
        f"{network_rows[1]['events_per_sec']:,.0f} ev/s = {pipeline_speedup:.2f}x the "
        f"committed baseline {NETWORK_1CH_BASELINE_EVENTS_PER_SEC:,.0f} ev/s; "
        f"floor is {NETWORK_1CH_SPEEDUP_FLOOR}x"
    )

    # Sharded acceptance: identical answers everywhere; >= 2x events/sec over
    # the shared clock wherever the fan-out has cores to land on.
    assert record_fingerprint(sharded_record) == record_fingerprint(shared_record)
    if cores >= SHARDED_MIN_CORES:
        assert sharded_speedup >= SHARDED_SPEEDUP_FLOOR, (
            f"sharded execution sustained only {sharded_speedup:.2f}x the shared "
            f"clock ({sharded_row['events_per_sec']:,.0f} vs "
            f"{shared_row['events_per_sec']:,.0f} ev/s) on {cores} cores; "
            f"floor is {SHARDED_SPEEDUP_FLOOR}x"
        )
