"""Figure 8: inter- vs intra-block MVCC read conflicts over the arrival rate."""

from conftest import run_figure

from repro.bench.experiments import figure08_mvcc_by_arrival_rate


def test_fig08_mvcc_by_arrival_rate(benchmark, scale):
    report = run_figure(benchmark, figure08_mvcc_by_arrival_rate, scale)
    rates = report.column("arrival_rate")
    total = dict(zip(rates, report.column("total_mvcc_pct")))
    # MVCC read conflicts increase with the transaction arrival rate.
    assert total[max(rates)] > total[min(rates)]
