"""Fault resilience under chaos: committed throughput degrades with the peer
crash rate, and jittered-backoff client retries recover a measurable fraction
of the goodput lost to transient infrastructure faults (extension beyond the
paper, see repro.faults).

The run records both sweeps to ``BENCH_fault_resilience.json`` at the repo
root and asserts the acceptance bars in-test.
"""

import json
from pathlib import Path

from conftest import run_figure

from repro.bench.experiments import fault_resilience, fault_retry_interaction

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_fault_resilience.json"


def _record(section: str, report) -> None:
    """Merge one report's rows into the benchmark result file."""
    document = {}
    if RESULT_PATH.exists():
        document = json.loads(RESULT_PATH.read_text())
    document[section] = {
        "title": report.title,
        "headers": list(report.headers),
        "rows": [list(row) for row in report.rows],
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")


def test_fault_resilience_degrades_throughput(benchmark, scale):
    report = run_figure(benchmark, fault_resilience, scale)
    _record("fault_resilience", report)
    rates = report.column("peer_crash_rate")
    throughput = dict(zip(rates, report.column("committed_throughput_tps")))
    goodput = dict(zip(rates, report.column("goodput_tps")))
    unavailable = dict(zip(rates, report.column("peer_unavailable_pct")))
    healthy, crashiest = rates[0], rates[-1]
    # The healthy baseline takes the bit-identical no-fault path...
    assert healthy == 0.0
    assert unavailable[healthy] == 0.0
    # ...and chaos costs real capacity: the crashiest cell loses a measurable
    # share of committed throughput and goodput while the infrastructure
    # failure class appears.
    assert throughput[crashiest] < 0.9 * throughput[healthy]
    assert goodput[crashiest] < goodput[healthy]
    assert unavailable[crashiest] > 0.0


def test_fault_retry_interaction_recovers_goodput(benchmark, scale):
    report = run_figure(benchmark, fault_retry_interaction, scale)
    _record("fault_retry_interaction", report)
    policies = report.column("retry_policy")
    recovered = dict(zip(policies, report.column("recovered_request_pct")))
    committed = dict(zip(policies, report.column("committed_requests")))
    effective = dict(zip(policies, report.column("client_effective_failure_pct")))
    resubmissions = dict(zip(policies, report.column("resubmissions")))
    # Without retries every transient fault permanently loses its request.
    assert resubmissions["none"] == 0
    assert recovered["none"] == 0.0
    # Jittered backoff outlasts the transient faults and resubmits after they
    # clear: a measurable fraction (>= 15%) of the requests the no-retry
    # clients permanently lose end up committing — goodput's numerator — and
    # the client-effective failure rate drops below the no-retry baseline.
    assert recovered["jittered"] >= 15.0
    assert committed["jittered"] > committed["none"]
    assert effective["jittered"] < effective["none"]
