"""Figure 22: Streamchain vs Fabric 1.4 across workloads and key skew."""

from conftest import run_figure

from repro.bench.experiments import figure22_streamchain_workloads


def test_fig22_streamchain_workloads(benchmark, scale):
    report = run_figure(benchmark, figure22_streamchain_workloads, scale)
    # Streamchain reduces failures regardless of the type of workload (Section 5.3.2):
    # check the most conflict-prone series points.
    for series, point in (("workload", "UH"), ("skew", "2.0")):
        fabric = report.value("failures_pct", variant="fabric-1.4", series=series, point=point)
        stream = report.value("failures_pct", variant="streamchain", series=series, point=point)
        assert stream <= fabric
