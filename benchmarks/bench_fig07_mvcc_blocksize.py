"""Figure 7: inter- vs intra-block MVCC read conflicts over the block size."""

from conftest import run_figure

from repro.bench.experiments import figure07_mvcc_by_block_size


def test_fig07_mvcc_by_block_size(benchmark, scale):
    report = run_figure(benchmark, figure07_mvcc_by_block_size, scale)
    sizes = report.column("block_size")
    intra = dict(zip(sizes, report.column("intra_block_pct")))
    inter = dict(zip(sizes, report.column("inter_block_pct")))
    # Intra-block conflicts grow with the block size; inter-block conflicts shrink.
    assert intra[max(sizes)] > intra[min(sizes)]
    assert inter[max(sizes)] < inter[min(sizes)]
