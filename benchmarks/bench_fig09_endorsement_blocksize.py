"""Figure 9: endorsement policy failures over the block size."""

from conftest import run_figure

from repro.bench.experiments import figure09_endorsement_by_block_size


def test_fig09_endorsement_by_block_size(benchmark, scale):
    report = run_figure(benchmark, figure09_endorsement_by_block_size, scale)
    values = report.column("endorsement_failures_pct")
    # Endorsement policy failures stay within a few percent at every block size
    # (they are caused by world-state inconsistency, not by batching).
    assert max(values) <= 10.0
