"""Figure 21: committed transaction throughput at high arrival rates."""

from conftest import run_figure

from repro.bench.experiments import figure21_streamchain_throughput


def test_fig21_streamchain_throughput(benchmark, scale):
    report = run_figure(benchmark, figure21_streamchain_throughput, scale)
    # On the C1 cluster at 200 tps, Fabric 1.4 commits more transactions to the
    # chain than Streamchain, which saturates (Section 5.3.1).
    fabric = report.value(
        "committed_throughput_tps", cluster="C1", arrival_rate=200, variant="fabric-1.4"
    )
    stream = report.value(
        "committed_throughput_tps", cluster="C1", arrival_rate=200, variant="streamchain"
    )
    assert fabric > stream
