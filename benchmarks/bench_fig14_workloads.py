"""Figure 14: effect of the workload mix (genChain)."""

from conftest import run_figure

from repro.bench.experiments import figure14_workload_mix


def test_fig14_workload_mix(benchmark, scale):
    report = run_figure(benchmark, figure14_workload_mix, scale)
    failures = dict(zip(report.column("workload"), report.column("failures_pct")))
    # Update-heavy fails most; insert- and delete-heavy workloads fail least.
    assert failures["UH"] == max(failures.values())
    assert failures["IH"] <= failures["RH"]
    assert failures["DH"] <= failures["RH"]
