"""Figure 4: best block size at different transaction arrival rates."""

from conftest import run_figure

from repro.bench.experiments import figure04_best_block_size

#: The quick scale restricts the sweep to two chaincodes and the C2 cluster so
#: the benchmark finishes on a laptop; pass REPRO_BENCH_SCALE=paper for the
#: full Figure 4 grid (EHR/DV/DRM on both clusters).
QUICK_CHAINCODES = ("EHR", "DRM")
QUICK_CLUSTERS = ("C2",)


def test_fig04_best_block_size(benchmark, scale):
    chaincodes = QUICK_CHAINCODES if scale.name == "quick" else ("EHR", "DV", "DRM")
    clusters = QUICK_CLUSTERS if scale.name == "quick" else ("C1", "C2")
    report = run_figure(
        benchmark, figure04_best_block_size, scale, chaincodes=chaincodes, clusters=clusters
    )
    # The best block size must not shrink as the arrival rate grows (EHR, C2).
    ehr = [row for row in report.rows if row[0] == "EHR" and row[1] == "C2"]
    rates = sorted(row[2] for row in ehr)
    best_by_rate = {row[2]: row[3] for row in ehr}
    assert best_by_rate[rates[-1]] >= best_by_rate[rates[0]]
