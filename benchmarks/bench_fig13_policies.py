"""Figure 13: effect of the endorsement policies P0-P3 (Table 5)."""

from conftest import run_figure

from repro.bench.experiments import figure13_endorsement_policies


def test_fig13_endorsement_policies(benchmark, scale):
    report = run_figure(benchmark, figure13_endorsement_policies, scale)
    endorsement = dict(zip(report.column("policy"), report.column("endorsement_pct")))
    # P0 (all organizations must sign) fails at least as often as P1 (Org0 plus
    # any one other), which needs a strict subset of P0's signatures.  The other
    # pairings are within single-run noise at quick scale.
    assert endorsement["P0"] >= endorsement["P1"]
