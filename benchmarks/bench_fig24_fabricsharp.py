"""Figure 24: FabricSharp vs Fabric 1.4."""

from conftest import run_figure

from repro.bench.experiments import figure24_fabricsharp_load


def test_fig24_fabricsharp_load(benchmark, scale):
    report = run_figure(benchmark, figure24_fabricsharp_load, scale)
    top_rate = max(report.column("arrival_rate"))
    # FabricSharp eliminates MVCC read conflicts entirely ...
    assert report.value("mvcc_pct", variant="fabricsharp", arrival_rate=top_rate) == 0.0
    # ... reduces the recorded failures dramatically ...
    assert report.value("failures_pct", variant="fabricsharp", arrival_rate=top_rate) < report.value(
        "failures_pct", variant="fabric-1.4", arrival_rate=top_rate
    )
    # ... but commits fewer transactions to the blockchain.
    assert report.value(
        "committed_throughput_tps", variant="fabricsharp", arrival_rate=top_rate
    ) < report.value("committed_throughput_tps", variant="fabric-1.4", arrival_rate=top_rate)
