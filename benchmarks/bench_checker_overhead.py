"""Isolation-checker overhead: events/sec with checking off vs on, per cell
(extension beyond the paper, see repro.checker)."""

from conftest import run_figure

from repro.bench.experiments import checker_overhead


def test_checker_overhead_grid(benchmark, scale):
    report = run_figure(benchmark, checker_overhead, scale)
    # Every cell of the grid must come back certified: these are conflict-free
    # ww/wr/rw histories ordered by commit, so a refutation here is a checker
    # bug, not an interesting anomaly.
    assert set(report.column("verdict")) == {"CERTIFIED-SERIALIZABLE"}
    # The per-cell wall-clock ratios are noisy at quick scale (the runs are
    # tens of milliseconds); the enforced <= 10% floor lives in the paired
    # median guard in test_checker_overhead_smoke.py.  Here the grid-wide
    # median must stay under a loose 25% to catch order-of-magnitude
    # regressions in the incremental graph maintenance.
    overheads = sorted(report.column("overhead_pct"))
    median = overheads[len(overheads) // 2]
    assert median <= 25.0, f"median checker overhead {median:.1f}% across the grid"
