"""Table 2: chaincode functions and their operations."""

from conftest import run_figure

from repro.bench.experiments import table02_chaincode_profiles


def test_table02_chaincode_profiles(benchmark, scale):
    report = run_figure(benchmark, table02_chaincode_profiles, scale)
    assert {"EHR", "DV", "SCM", "DRM", "genChain"} == set(report.column("chaincode"))
