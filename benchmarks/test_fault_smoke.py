"""Always-on smoke coverage of the fault-injection subsystem.

Fast counterpart of ``bench_fault_resilience.py`` (which is marked ``slow``):
one tiny chaotic cell per assertion, small enough for the tier-1 run and the
CI bench-smoke job.  Covers the end-to-end path — chaos profile → schedule →
controller → infrastructure failure classes → metrics — plus the determinism
and no-fault-bit-identity contracts the subsystem is built on.
"""

from repro.bench.experiments import QUICK_SCALE, base_config, scaled_workload
from repro.bench.harness import run_experiment
from repro.faults.spec import FaultConfig

CHAOS = FaultConfig(
    peer_crash_rate=0.3,
    peer_downtime=1.5,
    orderer_outages=((1.0, 0.8),),
    endorsement_loss_rate=0.05,
)


def _chaos_config(**overrides):
    return base_config(
        QUICK_SCALE,
        cluster="C1",
        workload=scaled_workload("EHR", QUICK_SCALE),
        arrival_rate=60.0,
        block_size=10,
        database="leveldb",
        **overrides,
    ).with_overrides(duration=3.0)


def test_chaos_produces_infrastructure_failures_and_costs_throughput():
    healthy = run_experiment(_chaos_config()).analyses[0].metrics
    chaotic = run_experiment(_chaos_config(faults=CHAOS)).analyses[0].metrics
    report = chaotic.failure_report
    assert healthy.failure_report.infrastructure_pct == 0.0
    assert healthy.fault_injections == {}
    assert report.infrastructure_pct > 0.0
    assert chaotic.fault_injections.get("orderer_outage_start") == 1
    assert chaotic.fault_injections.get("peer_crash", 0) >= 1
    assert chaotic.committed_throughput < healthy.committed_throughput


def test_orderer_outage_refuses_submissions():
    # An outage-only profile (no crashes competing for the same transactions)
    # pins the ORDERER_UNAVAILABLE path: submissions inside the window are
    # refused, and the deferred block cut drains the pre-outage batch after
    # the window ends.
    outage_only = FaultConfig(orderer_outages=((1.0, 1.0),))
    metrics = run_experiment(_chaos_config(faults=outage_only)).analyses[0].metrics
    assert metrics.failure_report.orderer_unavailable_pct > 0.0
    assert metrics.failure_report.peer_unavailable_pct == 0.0
    assert metrics.fault_injections == {
        "orderer_outage_end": 1,
        "orderer_outage_start": 1,
    }
    assert metrics.committed_transactions > 0


def test_chaos_runs_are_deterministic():
    first = run_experiment(_chaos_config(faults=CHAOS)).analyses[0].metrics
    second = run_experiment(_chaos_config(faults=CHAOS)).analyses[0].metrics
    assert first.committed_throughput == second.committed_throughput
    assert first.failure_report.as_dict() == second.failure_report.as_dict()
    assert first.fault_injections == second.fault_injections


def test_disabled_fault_config_keeps_the_cell_hash():
    # A default FaultConfig is omitted from the canonical payload, so the
    # cell hash — and with it every derived seed and cached result — is the
    # one the configuration had before the fault subsystem existed.
    assert (
        _chaos_config().cell_hash()
        == _chaos_config(faults=FaultConfig()).cell_hash()
    )
    assert _chaos_config().cell_hash() != _chaos_config(faults=CHAOS).cell_hash()
