"""Figure 25: FabricSharp vs Fabric 1.4 across workloads and key skew."""

from conftest import run_figure

from repro.bench.experiments import figure25_fabricsharp_workloads


def test_fig25_fabricsharp_workloads(benchmark, scale):
    report = run_figure(benchmark, figure25_fabricsharp_workloads, scale)
    # FabricSharp dramatically reduces failures for the update-heavy workload
    # (paper: 23.03 % -> 2.34 %) and for highly skewed key access
    # (paper: 94.32 % -> 4.63 %).
    assert report.value(
        "failures_pct", variant="fabricsharp", series="workload", point="UH"
    ) < report.value("failures_pct", variant="fabric-1.4", series="workload", point="UH")
    assert report.value(
        "failures_pct", variant="fabricsharp", series="skew", point="2.0"
    ) < report.value("failures_pct", variant="fabric-1.4", series="skew", point="2.0")
