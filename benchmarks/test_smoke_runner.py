"""Smoke target: one quick figure per system family, through the runner.

These are plain (non-``benchmark``) tests at a deliberately tiny scale, so
they run inside the tier-1 suite in a couple of seconds.  They exercise the
full figure → :class:`~repro.bench.runner.ExperimentRunner` → cache path for
each variant family of the paper — Fabric 1.4 (Figure 6), Fabric++
(Figure 17), Streamchain (Figure 20) and FabricSharp (Figure 24) — and assert
that a cached regeneration is served without re-simulating and reproduces the
rows exactly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.experiments import (
    QUICK_SCALE,
    figure06_latency_throughput,
    figure17_fabricpp_block_size,
    figure20_streamchain_load,
    figure24_fabricsharp_load,
)
from repro.bench.runner import ExperimentRunner, ResultCache

#: The quick scale with the duration trimmed so each family smokes in ~a second.
SMOKE_SCALE = dataclasses.replace(QUICK_SCALE, name="smoke", duration=2.0, block_sizes=(10, 50))

_FAMILIES = [
    ("fabric-1.4", lambda runner: figure06_latency_throughput(SMOKE_SCALE, runner=runner)),
    ("fabric++", lambda runner: figure17_fabricpp_block_size(SMOKE_SCALE, block_sizes=(10, 50), runner=runner)),
    ("streamchain", lambda runner: figure20_streamchain_load(SMOKE_SCALE, rates=(10, 40), runner=runner)),
    ("fabricsharp", lambda runner: figure24_fabricsharp_load(SMOKE_SCALE, rates=(10, 40), runner=runner)),
]


@pytest.mark.parametrize("family,regenerate", _FAMILIES, ids=[name for name, _ in _FAMILIES])
def test_family_figure_smokes_under_runner(family, regenerate):
    runner = ExperimentRunner(workers=1, cache=ResultCache())
    report = regenerate(runner)
    assert report.rows, f"{family} figure produced no rows"
    assert runner.stats.tasks_run > 0
    assert runner.stats.cache_hits == 0

    cached = regenerate(runner)
    assert cached.rows == report.rows
    assert runner.stats.tasks_run == 0
    assert runner.stats.cache_hits == runner.stats.tasks_total
