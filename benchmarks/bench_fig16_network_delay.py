"""Figure 16: Fabric 1.4 with and without an induced network delay."""

from conftest import run_figure

from repro.bench.experiments import figure16_network_delay


def test_fig16_network_delay(benchmark, scale):
    report = run_figure(benchmark, figure16_network_delay, scale)
    # At the highest rate, the delayed configuration has higher latency and at
    # least as many endorsement policy failures.
    rates = sorted(set(report.column("arrival_rate")))
    top_rate = rates[-1]
    delayed = report.rows_where(arrival_rate=top_rate, delayed=True)[0]
    baseline = report.rows_where(arrival_rate=top_rate, delayed=False)[0]
    latency_index = report.headers.index("latency_s")
    endorsement_index = report.headers.index("endorsement_pct")
    assert delayed[latency_index] > baseline[latency_index]
    assert delayed[endorsement_index] >= baseline[endorsement_index]
