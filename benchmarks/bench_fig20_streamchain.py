"""Figure 20: Streamchain vs Fabric 1.4 at low arrival rates."""

from conftest import run_figure

from repro.bench.experiments import figure20_streamchain_load


def test_fig20_streamchain_load(benchmark, scale):
    report = run_figure(benchmark, figure20_streamchain_load, scale)
    # At every evaluated rate Streamchain has (much) lower latency than Fabric 1.4.
    for rate in sorted(set(report.column("arrival_rate"))):
        fabric = report.value("latency_s", variant="fabric-1.4", arrival_rate=rate)
        stream = report.value("latency_s", variant="streamchain", arrival_rate=rate)
        assert stream < fabric
