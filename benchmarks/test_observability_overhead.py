"""Overhead guard: disabled observability costs nothing (always-on, tier-1).

The zero-cost contract has two halves and this module pins both in the
default test selection:

* **Structural** — building a deployment with the default (disabled)
  :class:`~repro.observability.config.ObservabilityConfig` installs nothing:
  no observer, no bus listener, no pre-scheduled sampler tick, no profiler.
  This is the strong form of the guarantee; it catches a regression exactly,
  independent of machine noise.
* **Measured** — the engine hot loop with observability disabled sustains the
  baseline events/sec on the 30k-transaction smoke cascade (the same cascade
  the engine-speed smoke guard drives).  Each round pairs one baseline run
  with one disabled-path run back to back, and the guard takes the *median*
  of the per-round ratios, so scheduler jitter on shared CI runners cancels
  out; the floor (within 2%) trips if the disabled path ever grows a
  per-event branch or hook in the dispatch loop.
"""

from __future__ import annotations

import gc
import statistics

from repro.bench.enginespeed import run_cascade
from repro.bench.harness import ExperimentConfig
from repro.fabric import create_variant
from repro.network.config import NetworkConfig
from repro.network.network import FabricNetwork
from repro.observability import ObservabilityConfig
from repro.sim.engine import Simulator

SMOKE_TRANSACTIONS = 30_000
ROUNDS = 5
OVERHEAD_FLOOR = 0.98  # disabled-path events/sec must stay within 2% of baseline


def build_disabled_network() -> FabricNetwork:
    config = NetworkConfig(cluster="C1", database="leveldb", block_size=10)
    assert not config.observability.enabled
    return FabricNetwork(
        config=config,
        chaincode=ExperimentConfig().build_chaincode(),
        variant=create_variant("fabric-1.4"),
        seed=7,
    )


# ------------------------------------------------------------------ structural
def test_disabled_observability_installs_nothing():
    network = build_disabled_network()
    assert network.observer is None
    assert not network.bus._listeners, "a disabled config subscribed a bus listener"
    assert network.sim.pending_events == 0, "a disabled config pre-scheduled engine events"
    assert not network.sim.profiler_attached


def test_disabled_config_is_the_default_everywhere():
    assert not ObservabilityConfig().enabled
    assert not NetworkConfig().observability.enabled
    assert not ExperimentConfig().network.observability.enabled


# -------------------------------------------------------------------- measured
def timed_cascade(sim: Simulator) -> dict:
    """One cascade round with the cyclic collector quiesced.

    The disabled-path simulator belongs to a full deployment whose live heap
    (genesis population, peers, ledger) would otherwise make collector passes
    during the timed window slower than the bare-simulator baseline's — heap
    size, not dispatch cost, which is the thing under test here.
    """
    gc.collect()
    gc.disable()
    try:
        return run_cascade(sim, SMOKE_TRANSACTIONS)
    finally:
        gc.enable()


def test_disabled_observability_keeps_the_engine_at_baseline_speed():
    # Pair a baseline and a disabled-path run back to back each round, then
    # judge the median of the per-round ratios: drift on a shared runner
    # (thermal, noisy neighbors) hits both sides of a pair equally, and the
    # median discards the outlier rounds that a best-of or mean would keep.
    ratios = []
    for _ in range(ROUNDS):
        baseline = timed_cascade(Simulator())
        disabled = timed_cascade(build_disabled_network().sim)
        assert disabled["events"] == baseline["events"]
        ratios.append(disabled["events_per_sec"] / baseline["events_per_sec"])

    ratio = statistics.median(ratios)
    assert ratio >= OVERHEAD_FLOOR, (
        f"engine with observability disabled sustained a median {ratio:.3f}x of the "
        f"baseline events/sec over {ROUNDS} paired rounds ({[f'{r:.3f}' for r in ratios]}); "
        f"floor is {OVERHEAD_FLOOR}x — the disabled path must not touch the dispatch loop"
    )
