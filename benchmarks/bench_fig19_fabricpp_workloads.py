"""Figure 19: Fabric++ vs Fabric 1.4 across workloads and key skew."""

from conftest import run_figure

from repro.bench.experiments import figure19_fabricpp_workloads


def test_fig19_fabricpp_workloads(benchmark, scale):
    report = run_figure(benchmark, figure19_fabricpp_workloads, scale)
    # Fabric++ must not make the conflict-free insert-heavy workload much worse
    # and must not lose against Fabric 1.4 on the update-heavy workload.
    fabric_uh = report.value("failures_pct", variant="fabric-1.4", series="workload", point="UH")
    fabricpp_uh = report.value("failures_pct", variant="fabric++", series="workload", point="UH")
    assert fabricpp_uh <= fabric_uh + 2.0
    fabricpp_ih = report.value("failures_pct", variant="fabric++", series="workload", point="IH")
    assert fabricpp_ih < 15.0
