"""Figure 15: effect of the Zipfian key skew."""

from conftest import run_figure

from repro.bench.experiments import figure15_zipf_skew


def test_fig15_zipf_skew(benchmark, scale):
    report = run_figure(benchmark, figure15_zipf_skew, scale)
    failures = dict(zip(report.column("zipf_skew"), report.column("failures_pct")))
    # Failures increase monotonically with the skew (paper: 29.6 / 67.5 / 94.3 %).
    assert failures[0.0] < failures[1.0] < failures[2.0]
