"""Figure 6: latency and committed throughput at different block sizes."""

from conftest import run_figure

from repro.bench.experiments import figure06_latency_throughput


def test_fig06_latency_throughput(benchmark, scale):
    report = run_figure(benchmark, figure06_latency_throughput, scale)
    latencies = dict(zip(report.column("block_size"), report.column("latency_s")))
    # Latency is not minimal at the largest block size (block fill time dominates there).
    largest = max(latencies)
    assert min(latencies.values()) < latencies[largest]
