"""Channel scaling: throughput and abort profile vs channel count and
cross-channel fraction (extension beyond the paper, see repro.channels)."""

from conftest import run_figure

from repro.bench.experiments import channels_cross_rate, channels_scaling


def test_channels_scaling_throughput_and_aborts(benchmark, scale):
    report = run_figure(benchmark, channels_scaling, scale)
    throughput = dict(
        zip(report.column("channels"), report.column("committed_throughput_tps"))
    )
    mvcc = dict(zip(report.column("channels"), report.column("mvcc_pct")))
    # At 0% cross-channel rate, sharding a saturated single orderer across
    # channels raises aggregate throughput, and the lighter per-channel load
    # shrinks the MVCC conflict window (hash placement spreads the hot keys).
    assert throughput[4] > throughput[1]
    assert mvcc[4] < mvcc[1]


def test_channels_cross_rate_aborts_grow(benchmark, scale):
    report = run_figure(benchmark, channels_cross_rate, scale)
    rates = report.column("cross_channel_rate")
    aborts = dict(zip(rates, report.column("cross_channel_abort_pct")))
    throughput = dict(zip(rates, report.column("committed_throughput_tps")))
    assert aborts[0.0] == 0.0
    assert aborts[max(rates)] > aborts[0.0]
    assert throughput[max(rates)] < throughput[0.0]
