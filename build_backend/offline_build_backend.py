"""PEP 517 build-backend shim that also works on machines without internet.

The project builds with plain ``setuptools.build_meta``.  However, ``pip``
performs builds in an *isolated* environment into which it normally downloads
the build requirements; on air-gapped machines that download fails and
``pip install -e .`` aborts before the project is even built.

This shim keeps ``requires = []`` in ``pyproject.toml`` (so pip has nothing to
download) and, when the isolated build environment does not already provide
setuptools, falls back to the setuptools installation of the host interpreter.
Online installations are unaffected: if setuptools is importable, the shim is a
plain re-export of ``setuptools.build_meta``.
"""

from __future__ import annotations

import os
import site
import sys
import sysconfig


def _candidate_site_packages() -> list[str]:
    candidates = []
    try:
        candidates.append(sysconfig.get_paths()["purelib"])
    except (KeyError, OSError):  # pragma: no cover - defensive
        pass
    try:
        candidates.extend(site.getsitepackages())
    except AttributeError:  # pragma: no cover - e.g. virtualenv without the API
        pass
    for prefix in (sys.prefix, sys.base_prefix):
        candidates.append(
            os.path.join(
                prefix,
                "lib",
                f"python{sys.version_info.major}.{sys.version_info.minor}",
                "site-packages",
            )
        )
        candidates.append(os.path.join(prefix, "Lib", "site-packages"))
    return candidates


def _ensure_setuptools() -> None:
    try:
        import setuptools  # noqa: F401

        return
    except ModuleNotFoundError:
        pass
    for path in _candidate_site_packages():
        if os.path.isdir(path) and path not in sys.path:
            sys.path.append(path)
    import setuptools  # noqa: F401  (raises a clear error if truly unavailable)


_ensure_setuptools()

from setuptools import build_meta as _setuptools_build_meta  # noqa: E402

build_wheel = _setuptools_build_meta.build_wheel
build_sdist = _setuptools_build_meta.build_sdist
prepare_metadata_for_build_wheel = _setuptools_build_meta.prepare_metadata_for_build_wheel

# Editable-install hooks (PEP 660) exist in setuptools >= 64.
if hasattr(_setuptools_build_meta, "build_editable"):
    build_editable = _setuptools_build_meta.build_editable
if hasattr(_setuptools_build_meta, "prepare_metadata_for_build_editable"):
    prepare_metadata_for_build_editable = (
        _setuptools_build_meta.prepare_metadata_for_build_editable
    )


# setuptools dynamically asks for "wheel" through the get_requires hooks, which
# pip would then try to download into the isolated build environment.  The host
# fallback above already makes setuptools (and wheel, when installed) available,
# so no additional requirements are reported.
def get_requires_for_build_wheel(config_settings=None):  # noqa: D103 - PEP 517 hook
    return []


def get_requires_for_build_sdist(config_settings=None):  # noqa: D103 - PEP 517 hook
    return []


def get_requires_for_build_editable(config_settings=None):  # noqa: D103 - PEP 517 hook
    return []
